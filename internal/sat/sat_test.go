package sat

import (
	"math/rand"
	"testing"
)

func TestLit(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Fatal("positive literal broken")
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Fatal("negation broken")
	}
	if n.Not() != l {
		t.Fatal("double negation broken")
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if s.Solve() != Sat {
		t.Fatal("single unit clause should be sat")
	}
	if !s.Model(a) {
		t.Fatal("model should assign a=true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	ok := s.AddClause(MkLit(a, true))
	if ok && s.Solve() != Unsat {
		t.Fatal("a AND !a should be unsat")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("adding empty clause should return false")
	}
	if s.Solve() != Unsat {
		t.Fatal("empty clause should make formula unsat")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(MkLit(a, false), MkLit(a, true)) {
		t.Fatal("tautology should be accepted")
	}
	if s.Solve() != Sat {
		t.Fatal("tautology-only formula should be sat")
	}
}

func TestXorChain(t *testing.T) {
	// x0 xor x1 = 1, x1 xor x2 = 1, ..., forces alternating assignment.
	s := New()
	const n = 20
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		a, b := vars[i], vars[i+1]
		// a xor b: (a|b) & (!a|!b)
		s.AddClause(MkLit(a, false), MkLit(b, false))
		s.AddClause(MkLit(a, true), MkLit(b, true))
	}
	s.AddClause(MkLit(vars[0], false)) // x0 = true
	if s.Solve() != Sat {
		t.Fatal("xor chain should be sat")
	}
	for i := range vars {
		want := i%2 == 0
		if s.Model(vars[i]) != want {
			t.Fatalf("x%d = %v, want %v", i, s.Model(vars[i]), want)
		}
	}
}

// pigeonhole encodes PHP(n+1, n), a classic unsat family.
func pigeonhole(s *Solver, pigeons, holes int) {
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want Unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if s.Solve() != Sat {
		t.Fatal("PHP(5,5) should be sat")
	}
}

// bruteForce checks satisfiability of a CNF over nVars by enumeration.
func bruteForce(nVars int, cnf [][]Lit) (bool, []bool) {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, cl := range cnf {
			clauseOK := false
			for _, l := range cl {
				val := mask&(1<<l.Var()) != 0
				if l.Neg() {
					val = !val
				}
				if val {
					clauseOK = true
					break
				}
			}
			if !clauseOK {
				ok = false
				break
			}
		}
		if ok {
			a := make([]bool, nVars)
			for i := range a {
				a[i] = mask&(1<<i) != 0
			}
			return true, a
		}
	}
	return false, nil
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 1 + rng.Intn(5*nVars)
		cnf := make([][]Lit, nClauses)
		for i := range cnf {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		wantSat, _ := bruteForce(nVars, cnf)

		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		topOK := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				topOK = false
				break
			}
		}
		got := Unsat
		if topOK {
			got = s.Solve()
		}
		if (got == Sat) != wantSat {
			t.Fatalf("trial %d: solver=%v brute=%v (vars=%d clauses=%v)",
				trial, got, wantSat, nVars, cnf)
		}
		if got == Sat {
			// Verify the model actually satisfies the formula.
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					val := s.Model(l.Var())
					if l.Neg() {
						val = !val
					}
					if val {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: model does not satisfy clause %v", trial, cl)
				}
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// a -> b
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if s.Solve(MkLit(a, false), MkLit(b, true)) != Unsat {
		t.Fatal("assuming a and !b should be unsat")
	}
	if s.Solve(MkLit(a, false)) != Sat {
		t.Fatal("assuming a should be sat")
	}
	if !s.Model(b) {
		t.Fatal("b must be true when a assumed")
	}
	// Solver remains usable without assumptions.
	if s.Solve() != Sat {
		t.Fatal("formula should be sat without assumptions")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if s.Solve() != Sat {
		t.Fatal("should be sat")
	}
	s.AddClause(MkLit(a, true))
	s.AddClause(MkLit(b, true))
	if s.Solve() != Unsat {
		t.Fatal("should be unsat after adding blocking units")
	}
}

func TestSolveTwiceStable(t *testing.T) {
	s := New()
	vars := make([]int, 8)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	pigeonhole(s, 4, 4)
	if s.Solve() != Sat || s.Solve() != Sat {
		t.Fatal("repeated solve changed result")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		const nVars = 60
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for c := 0; c < int(4.0*nVars); c++ {
			s.AddClause(
				MkLit(rng.Intn(nVars), rng.Intn(2) == 1),
				MkLit(rng.Intn(nVars), rng.Intn(2) == 1),
				MkLit(rng.Intn(nVars), rng.Intn(2) == 1))
		}
		s.Solve()
	}
}

// FuzzSolverAgainstBruteForce decodes fuzzer bytes as a small CNF and
// cross-checks the CDCL result with exhaustive enumeration.
func FuzzSolverAgainstBruteForce(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0x56})
	f.Add([]byte{0xFF, 0x00, 0xAB, 0xCD, 0xEF})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nVars = 6
		var cnf [][]Lit
		for i := 0; i+1 < len(data) && len(cnf) < 24; i += 2 {
			width := 1 + int(data[i]%3)
			var cl []Lit
			seed := int(data[i])<<8 | int(data[i+1])
			for j := 0; j < width; j++ {
				v := (seed >> (j * 4)) % nVars
				neg := (seed>>(j*4+3))&1 == 1
				cl = append(cl, MkLit(v, neg))
			}
			cnf = append(cnf, cl)
		}
		wantSat, _ := bruteForce(nVars, cnf)
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		ok := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				ok = false
				break
			}
		}
		got := Unsat
		if ok {
			got = s.Solve()
		}
		if (got == Sat) != wantSat {
			t.Fatalf("solver=%v brute=%v cnf=%v", got, wantSat, cnf)
		}
	})
}
