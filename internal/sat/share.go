package sat

// This file holds the portfolio-facing surface of the solver: worker
// cloning, clause import, and the diversification PRNG. A parallel SAT
// portfolio (internal/portfolio) clones one encoded solver per worker,
// perturbs each clone's search (seed, decay, phases), and wires
// LearnHook/ImportHook into a shared clause exchange. Sharing is sound
// because learned clauses are consequences of the problem clauses alone:
// assumptions enter search as pseudo-decisions above level 0 and appear
// (negated) inside learned clauses rather than being silently assumed.

// Clone returns a deep copy of the solver, valid for independent use
// from another goroutine. Any in-progress search is undone first
// (backtrack to decision level 0); level-0 facts, problem clauses, and
// learned clauses carry over, as do activities and saved phases, so a
// clone resumes from the same logical state. Search counters reset so a
// worker's Stats report only its own effort. Hooks (Interrupt,
// LearnHook, ImportHook) do not carry over: they close over the parent.
func (s *Solver) Clone() *Solver {
	s.cancelUntil(0)
	c := &Solver{
		clauses:      make([]clause, len(s.clauses)),
		watches:      make([][]watcher, len(s.watches)),
		assign:       append([]lbool(nil), s.assign...),
		level:        append([]int32(nil), s.level...),
		reason:       append([]clauseRef(nil), s.reason...),
		trail:        append([]Lit(nil), s.trail...),
		trailLk:      append([]int32(nil), s.trailLk...),
		qhead:        s.qhead,
		activity:     append([]float64(nil), s.activity...),
		varInc:       s.varInc,
		polarity:     append([]bool(nil), s.polarity...),
		seen:         make([]bool, len(s.seen)),
		numVars:      s.numVars,
		added:        s.added,
		unsat:        s.unsat,
		numLearned:   s.numLearned,
		reduceAt:     s.reduceAt,
		MaxConflicts: s.MaxConflicts,
		VarDecay:     s.VarDecay,
		RandFreq:     s.RandFreq,
		Seed:         s.Seed,
		ShareLimit:   s.ShareLimit,
	}
	for i := range s.clauses {
		cl := &s.clauses[i]
		c.clauses[i] = clause{
			lits:    append([]Lit(nil), cl.lits...),
			learned: cl.learned,
			deleted: cl.deleted,
			act:     cl.act,
		}
	}
	for i, ws := range s.watches {
		c.watches[i] = append([]watcher(nil), ws...)
	}
	c.order = &varHeap{
		solver: c,
		heap:   append([]int(nil), s.order.heap...),
		pos:    append([]int(nil), s.order.pos...),
	}
	return c
}

// ScramblePolarity pseudo-randomly flips the saved phase of every
// variable, diversifying which half of the search space a cloned worker
// explores first. It must be called between Solve calls (it backtracks
// to level 0).
func (s *Solver) ScramblePolarity(seed uint64) {
	s.cancelUntil(0)
	state := seed
	for v := range s.polarity {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		if (z^(z>>31))&1 == 1 {
			s.polarity[v] = !s.polarity[v]
		}
	}
}

// nextRand advances the splitmix64 diversification PRNG seeded by Seed.
func (s *Solver) nextRand() uint64 {
	s.Seed += 0x9e3779b97f4a7c15
	z := s.Seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *Solver) shareLimit() int {
	if s.ShareLimit > 0 {
		return s.ShareLimit
	}
	return 8
}

// drainImports pulls foreign learned clauses from ImportHook and attaches
// them at decision level 0. It reports false when an import exposed a
// top-level contradiction (the formula is unsatisfiable). Callers must be
// at decision level 0.
func (s *Solver) drainImports() bool {
	if s.ImportHook == nil {
		return true
	}
	for _, lits := range s.ImportHook() {
		if !s.importClause(lits) {
			s.unsat = true
			return false
		}
	}
	return true
}

// importClause attaches one foreign learned clause, normalizing against
// level-0 facts exactly like AddClause but marking the result learned so
// reduceDB can age it out. It reports false on a top-level contradiction.
func (s *Solver) importClause(lits []Lit) bool {
	norm := make([]Lit, 0, len(lits))
	seen := map[Lit]bool{}
	for _, l := range lits {
		if l.Var() >= s.numVars {
			// A clause can mention variables the importing worker has not
			// allocated only if the workers diverged; drop it defensively.
			return true
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at top level
		case lFalse:
			continue
		}
		if seen[l.Not()] {
			return true // tautology
		}
		if !seen[l] {
			seen[l] = true
			norm = append(norm, l)
		}
	}
	switch len(norm) {
	case 0:
		return false
	case 1:
		if !s.enqueue(norm[0], nilClause) {
			return false
		}
		if s.propagate() != nilClause {
			return false
		}
		s.imported++
		return true
	}
	s.attach(norm, true)
	s.numLearned++
	s.imported++
	return true
}
