package cancel

import (
	"context"
	"errors"
	"testing"
)

func TestFromContextBackground(t *testing.T) {
	if chk := FromContext(context.Background()); chk != nil {
		t.Fatalf("background context must yield a nil Check")
	}
	if chk := FromContext(nil); chk != nil {
		t.Fatalf("nil context must yield a nil Check")
	}
}

func TestNilCheckPoint(t *testing.T) {
	var chk Check
	chk.Point() // must not panic
}

func TestPointPanicsAfterCancel(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	chk := FromContext(ctx)
	if chk == nil {
		t.Fatalf("cancellable context must yield a non-nil Check")
	}
	chk.Point() // live context: no panic

	cancelFn()
	var err error
	func() {
		defer Trap(&err)
		chk.Point()
		t.Fatalf("Point must panic after cancel")
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("trapped err = %v, want context.Canceled", err)
	}
}

func TestTrapPassesOtherPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("foreign panic must pass through Trap, got %v", r)
		}
	}()
	var err error
	defer Trap(&err)
	panic("boom")
}

func TestTrapNoPanic(t *testing.T) {
	err := errors.New("sentinel")
	func() {
		defer Trap(&err)
	}()
	if err == nil || err.Error() != "sentinel" {
		t.Fatalf("Trap must leave *err alone without a panic, got %v", err)
	}
}
