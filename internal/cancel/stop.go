package cancel

import (
	"errors"
	"sync/atomic"
)

// ErrStopped is the default cause recorded by Stop.Trigger. The solver
// portfolio uses it to tear down race losers: it means "another strategy
// answered first", not "the query failed".
var ErrStopped = errors.New("cancel: stopped")

// Stop is a manually-triggered cancellation source with first-cause
// semantics: the first Trigger wins and later calls are no-ops. It is
// safe for concurrent use. Racing strategies each derive their Check
// from a private Stop merged with the caller's context Check, so the
// race coordinator can cancel losers without touching the winner or the
// caller's deadline.
type Stop struct {
	cause atomic.Pointer[error]
}

// Trigger stops the computation with the given cause (ErrStopped when
// nil). Only the first call records its cause.
func (s *Stop) Trigger(cause error) {
	if cause == nil {
		cause = ErrStopped
	}
	s.cause.CompareAndSwap(nil, &cause)
}

// Err returns the recorded cause, or nil while the Stop is untriggered.
func (s *Stop) Err() error {
	if p := s.cause.Load(); p != nil {
		return *p
	}
	return nil
}

// Stopped reports whether Trigger has been called.
func (s *Stop) Stopped() bool { return s.cause.Load() != nil }

// Check adapts the Stop into the solver poll-point protocol.
func (s *Stop) Check() Check { return s.Err }

// Merge combines checks into one that reports the first failure among
// them, preserving the nil-means-free convention: nil inputs are
// skipped, and an all-nil merge is itself nil.
func Merge(checks ...Check) Check {
	live := make([]Check, 0, len(checks))
	for _, c := range checks {
		if c != nil {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func() error {
		for _, c := range live {
			if err := c(); err != nil {
				return err
			}
		}
		return nil
	}
}
