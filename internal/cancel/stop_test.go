package cancel

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestStopFirstCauseWins(t *testing.T) {
	var s Stop
	if s.Stopped() || s.Err() != nil {
		t.Fatal("fresh Stop should be untriggered")
	}
	first := errors.New("first")
	s.Trigger(first)
	s.Trigger(errors.New("second"))
	if s.Err() != first {
		t.Fatalf("Err() = %v, want first cause", s.Err())
	}
	if !s.Stopped() {
		t.Fatal("Stopped() should be true after Trigger")
	}
}

func TestStopNilCauseDefaults(t *testing.T) {
	var s Stop
	s.Trigger(nil)
	if s.Err() != ErrStopped {
		t.Fatalf("Err() = %v, want ErrStopped", s.Err())
	}
}

func TestStopConcurrentTrigger(t *testing.T) {
	var s Stop
	causes := make([]error, 16)
	for i := range causes {
		causes[i] = errors.New("cause")
	}
	var wg sync.WaitGroup
	for i := range causes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Trigger(causes[i])
		}(i)
	}
	wg.Wait()
	got := s.Err()
	found := false
	for _, c := range causes {
		if got == c {
			found = true
		}
	}
	if !found {
		t.Fatalf("Err() = %v, not one of the triggered causes", got)
	}
}

func TestStopCheckPanicsAtPoint(t *testing.T) {
	var s Stop
	chk := s.Check()
	chk.Point() // untriggered: must not panic
	s.Trigger(nil)
	var err error
	func() {
		defer Trap(&err)
		chk.Point()
	}()
	if err != ErrStopped {
		t.Fatalf("trapped %v, want ErrStopped", err)
	}
}

func TestMerge(t *testing.T) {
	if Merge() != nil || Merge(nil, nil) != nil {
		t.Fatal("all-nil merge should be nil")
	}
	var s Stop
	chk := Merge(nil, s.Check(), nil)
	if err := chk(); err != nil {
		t.Fatalf("untriggered merge = %v", err)
	}
	s.Trigger(nil)
	if err := chk(); err != ErrStopped {
		t.Fatalf("triggered merge = %v, want ErrStopped", err)
	}
}

func TestMergeWithContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var s Stop
	chk := Merge(FromContext(ctx), s.Check())
	if err := chk(); err != nil {
		t.Fatalf("live merge = %v", err)
	}
	cancel()
	if err := chk(); !errors.Is(err, context.Canceled) {
		t.Fatalf("merge after ctx cancel = %v, want context.Canceled", err)
	}
}
