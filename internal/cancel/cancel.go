// Package cancel carries cooperative cancellation through the solver
// stack. Solvers are deep recursive computations (the BDD apply loops) or
// tight search loops (CDCL); neither can thread a context.Context through
// every frame without distorting the code, and neither can afford a
// channel receive per step. The scheme here is the classic
// counter-gated poll + panic unwind:
//
//   - An analysis boundary (zen.Find and friends) derives a Check from
//     its context and arms the backends with it.
//   - Hot loops call Check.Point every ~2^10 units of work. When the
//     context has died, Point panics with Abort, unwinding the solver
//     recursion in one bound.
//   - The boundary recovers the Abort with Trap and converts it into an
//     ordinary error return.
//
// Abort is an implementation detail of this module: it must never escape
// an exported API. Every entry point that arms an interrupt is
// responsible for trapping it.
package cancel

import "context"

// Check reports whether the computation should stop: nil means keep
// going, a non-nil error is the cancellation cause (typically
// context.Canceled or context.DeadlineExceeded). A nil Check means
// "never cancelled" and is the zero-cost default everywhere.
type Check func() error

// FromContext derives a Check from a context. It returns nil — the
// free-running default — when ctx is nil or can never be cancelled, so
// un-deadlined callers pay nothing at solver poll points.
func FromContext(ctx context.Context) Check {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() error { return ctx.Err() }
}

// Abort is the panic value raised at a poll point when the Check reports
// cancellation. It unwinds solver recursion; Trap converts it back into
// an error at the analysis boundary.
type Abort struct{ Err error }

// Point polls the check and panics with Abort when the computation
// should stop. Callers gate it behind a work counter; the nil receiver
// makes the un-armed path a single comparison.
func (c Check) Point() {
	if c == nil {
		return
	}
	if err := c(); err != nil {
		panic(Abort{Err: err})
	}
}

// Trap is the boundary recover: deferred by analysis entry points, it
// converts an in-flight Abort into *err and re-raises any other panic.
//
//	func (fn *Fn[I, O]) FindCtx(...) (w I, ok bool, err error) {
//		defer cancel.Trap(&err)
//		...
//	}
func Trap(err *error) {
	switch r := recover().(type) {
	case nil:
	case Abort:
		*err = r.Err
	default:
		panic(r)
	}
}
