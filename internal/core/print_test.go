package core

import (
	"strings"
	"testing"
)

func TestNodeString(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	x := b.Var(u8, "x")
	e := b.If(b.Lt(x, b.BVConst(u8, 10)), b.Add(x, b.BVConst(u8, 1)), x)
	s := e.String()
	for _, want := range []string{"if", "lt", "x#", "10", "add"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
	if b.BoolConst(true).String() != "true" {
		t.Fatal("bool const string")
	}
	i8 := BV(8, true)
	if b.BVConst(i8, 0xFF).String() != "-1" {
		t.Fatal("signed const string")
	}
}

func TestNodeStringDepthLimit(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	e := b.Var(u8, "x")
	for i := 0; i < 20; i++ {
		e = b.Add(e, b.BVConst(u8, 1))
	}
	if !strings.Contains(e.String(), "(...)") {
		t.Fatal("deep expressions should truncate")
	}
}

func TestFieldOpsString(t *testing.T) {
	b := NewBuilder()
	hdr := Object("H", Field{"A", BV(8, false)}, Field{"B", Bool()})
	o := b.Var(hdr, "o")
	g := b.GetField(o, 1)
	if !strings.Contains(g.String(), ".B") {
		t.Fatalf("GetField string %q missing field name", g.String())
	}
	sh := b.Shl(b.Var(BV(8, false), "y"), 3)
	if !strings.Contains(sh.String(), "shl 3") {
		t.Fatalf("shift string %q", sh.String())
	}
}

func TestDot(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	x := b.Var(u8, "x")
	shared := b.Add(x, x)
	e := b.Mul(shared, shared)
	dot := Dot(e)
	if !strings.HasPrefix(dot, "digraph zen {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatal("dot framing wrong")
	}
	// Sharing preserved: the add node appears once as a definition.
	if strings.Count(dot, "label=\"add\"") != 1 {
		t.Fatalf("shared node duplicated in dot:\n%s", dot)
	}
	if strings.Count(dot, "label=\"mul\"") != 1 {
		t.Fatal("mul node missing")
	}
}

func TestMeasure(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	x := b.Var(u8, "x")
	y := b.Var(u8, "y")
	e := b.Add(b.Add(x, y), b.BVConst(u8, 1))
	st := Measure(e)
	if st.Vars != 2 {
		t.Fatalf("vars = %d", st.Vars)
	}
	if st.Depth != 3 {
		t.Fatalf("depth = %d, want 3", st.Depth)
	}
	if st.Nodes != 5 { // x, y, add, const, add
		t.Fatalf("nodes = %d, want 5", st.Nodes)
	}
	// Sharing: doubling chain has linear node count.
	e2 := x
	for i := 0; i < 10; i++ {
		e2 = b.Add(e2, e2)
	}
	if st2 := Measure(e2); st2.Nodes != 11 {
		t.Fatalf("shared chain nodes = %d, want 11", st2.Nodes)
	}
}
