package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeConstructors(t *testing.T) {
	if Bool().String() != "bool" {
		t.Fatal("bool type string")
	}
	if BV(32, false).String() != "ubv32" || BV(16, true).String() != "ibv16" {
		t.Fatal("bv type strings")
	}
	if BV(8, false) != BV(8, false) {
		t.Fatal("BV types are not cached")
	}
	o := Object("Hdr", Field{"A", BV(8, false)}, Field{"B", Bool()})
	if o.FieldIndex("B") != 1 || o.FieldIndex("X") != -1 {
		t.Fatal("FieldIndex broken")
	}
	l := List(BV(8, false))
	if !strings.Contains(l.String(), "ubv8") {
		t.Fatal("list type string")
	}
	opt := Option(BV(4, false))
	if opt.FieldIndex("HasValue") != 0 || opt.FieldIndex("Value") != 1 {
		t.Fatal("Option layout wrong")
	}
	p := Pair(Bool(), BV(8, false))
	if p.FieldIndex("Item1") != 0 || p.FieldIndex("Item2") != 1 {
		t.Fatal("Pair layout wrong")
	}
}

func TestTypeBVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BV(0) should panic")
		}
	}()
	BV(0, false)
}

func TestNumBits(t *testing.T) {
	o := Object("X", Field{"A", BV(8, false)}, Field{"B", Bool()})
	if got := o.NumBits(0); got != 9 {
		t.Fatalf("NumBits = %d, want 9", got)
	}
	l := List(BV(4, false))
	// bound 3: 3 presence bits + 3 elements * 4 bits
	if got := l.NumBits(3); got != 15 {
		t.Fatalf("list NumBits = %d, want 15", got)
	}
}

func TestSignedHelpers(t *testing.T) {
	t8 := BV(8, true)
	if t8.ToSigned(0xFF) != -1 {
		t.Fatal("ToSigned(-1) wrong")
	}
	if t8.ToSigned(0x7F) != 127 {
		t.Fatal("ToSigned(127) wrong")
	}
	if t8.Mask(0x1FF) != 0xFF {
		t.Fatal("Mask wrong")
	}
}

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	x := b.Var(u8, "x")
	e1 := b.Add(x, b.BVConst(u8, 1))
	e2 := b.Add(x, b.BVConst(u8, 1))
	if e1 != e2 {
		t.Fatal("identical expressions not shared")
	}
	if b.Add(x, b.BVConst(u8, 2)) == e1 {
		t.Fatal("distinct expressions shared")
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	c := func(v uint64) *Node { return b.BVConst(u8, v) }
	if b.Add(c(200), c(100)).UVal != 44 { // wraparound
		t.Fatal("Add fold")
	}
	if b.Sub(c(1), c(2)).UVal != 255 {
		t.Fatal("Sub fold")
	}
	if b.Mul(c(16), c(16)).UVal != 0 {
		t.Fatal("Mul fold")
	}
	if b.BAnd(c(0xF0), c(0x3C)).UVal != 0x30 {
		t.Fatal("BAnd fold")
	}
	if b.BOr(c(0xF0), c(0x0F)).UVal != 0xFF {
		t.Fatal("BOr fold")
	}
	if b.BXor(c(0xFF), c(0x0F)).UVal != 0xF0 {
		t.Fatal("BXor fold")
	}
	if b.BNot(c(0)).UVal != 0xFF {
		t.Fatal("BNot fold")
	}
	if b.Shl(c(1), 4).UVal != 16 || b.Shr(c(16), 4).UVal != 1 {
		t.Fatal("shift fold")
	}
	if b.Shl(c(1), 9).UVal != 0 {
		t.Fatal("overshift fold")
	}
	if !b.Eq(c(3), c(3)).BVal || b.Eq(c(3), c(4)).BVal {
		t.Fatal("Eq fold")
	}
	if !b.Lt(c(3), c(4)).BVal || b.Lt(c(4), c(3)).BVal {
		t.Fatal("Lt fold")
	}
	i8 := BV(8, true)
	if !b.Lt(b.BVConst(i8, 0xFF), b.BVConst(i8, 1)).BVal {
		t.Fatal("signed Lt fold: -1 < 1 should hold")
	}
}

func TestBooleanSimplification(t *testing.T) {
	b := NewBuilder()
	x := b.Var(Bool(), "x")
	tr, fa := b.BoolConst(true), b.BoolConst(false)
	if b.And(x, tr) != x || b.And(tr, x) != x {
		t.Fatal("And identity")
	}
	if b.And(x, fa) != fa || b.Or(x, tr) != tr {
		t.Fatal("And/Or annihilator")
	}
	if b.Or(x, fa) != x {
		t.Fatal("Or identity")
	}
	if b.And(x, x) != x || b.Or(x, x) != x {
		t.Fatal("idempotence")
	}
	if b.Not(b.Not(x)) != x {
		t.Fatal("double negation")
	}
	if !b.Eq(x, x).BVal {
		t.Fatal("Eq(x,x) should fold to true")
	}
}

func TestIfSimplification(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	c := b.Var(Bool(), "c")
	x := b.Var(u8, "x")
	y := b.Var(u8, "y")
	if b.If(b.BoolConst(true), x, y) != x {
		t.Fatal("If(true) fold")
	}
	if b.If(b.BoolConst(false), x, y) != y {
		t.Fatal("If(false) fold")
	}
	if b.If(c, x, x) != x {
		t.Fatal("If same-branch fold")
	}
	// Boolean-result If folds into connectives.
	p, q := b.Var(Bool(), "p"), b.Var(Bool(), "q")
	if b.If(c, b.BoolConst(true), b.BoolConst(false)) != c {
		t.Fatal("If(c, true, false) != c")
	}
	if b.If(c, b.BoolConst(false), b.BoolConst(true)) != b.Not(c) {
		t.Fatal("If(c, false, true) != !c")
	}
	if b.If(c, p, b.BoolConst(false)) != b.And(c, p) {
		t.Fatal("If(c, p, false) != c&&p")
	}
	if b.If(c, b.BoolConst(true), q) != b.Or(c, q) {
		t.Fatal("If(c, true, q) != c||q")
	}
}

func TestObjectOps(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	hdr := Object("Hdr", Field{"A", u8}, Field{"B", Bool()})
	a := b.Var(u8, "a")
	fl := b.Var(Bool(), "f")
	o := b.Create(hdr, a, fl)
	if b.GetField(o, 0) != a || b.GetField(o, 1) != fl {
		t.Fatal("GetField on Create should project directly")
	}
	o2 := b.WithField(o, 0, b.BVConst(u8, 7))
	if b.GetField(o2, 0).UVal != 7 || b.GetField(o2, 1) != fl {
		t.Fatal("WithField on Create should rebuild")
	}
	// GetField pushes through If.
	c := b.Var(Bool(), "c")
	merged := b.If(c, o, o2)
	if b.GetField(merged, 0) != b.If(c, a, b.BVConst(u8, 7)) {
		t.Fatal("GetField should push through If")
	}
	// On a truly opaque object (an input variable), GetField/WithField
	// produce proper nodes.
	opaque := b.Var(hdr, "o")
	g := b.GetField(opaque, 0)
	if g.Op != OpGetField {
		t.Fatal("expected OpGetField node")
	}
	w := b.WithField(opaque, 1, b.BoolConst(true))
	if w.Op != OpWithField {
		t.Fatal("expected OpWithField node")
	}
	if b.GetField(w, 1).Op != OpConst {
		t.Fatal("GetField of just-set field should fold through WithField")
	}
	if b.GetField(w, 0) != g {
		t.Fatal("GetField of other field should skip WithField")
	}
}

func TestListOps(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	lt := List(u8)
	nilL := b.ListNil(lt)
	l1 := b.ListCons(b.BVConst(u8, 1), nilL)
	// Case on known-nil and known-cons folds immediately.
	got := b.ListCase(nilL, b.BVConst(u8, 99), func(h, t *Node) *Node { return h })
	if got.UVal != 99 {
		t.Fatal("ListCase on nil should pick empty branch")
	}
	got = b.ListCase(l1, b.BVConst(u8, 99), func(h, t *Node) *Node { return h })
	if got.UVal != 1 {
		t.Fatal("ListCase on cons should pick cons branch")
	}
	// Case on an opaque list produces a binder node.
	c := b.Var(Bool(), "c")
	opaque := b.If(c, nilL, l1)
	n := b.ListCase(opaque, b.BVConst(u8, 0), func(h, t *Node) *Node { return h })
	if n.Op != OpListCase || len(n.Bound) != 2 {
		t.Fatal("ListCase node malformed")
	}
	if n.Bound[0].Type != u8 || n.Bound[1].Type.Kind != KindList {
		t.Fatal("ListCase binder types wrong")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	b := NewBuilder()
	defer func() {
		if recover() == nil {
			t.Fatal("Add of mismatched widths should panic")
		}
	}()
	b.Add(b.Var(BV(8, false), "x"), b.Var(BV(16, false), "y"))
}

func TestAdapt(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	lt := List(Pair(u8, u8))
	mt := List(Pair(u8, u8)) // "map" representation
	e := b.ListNil(lt)
	a := b.Adapt(mt, e)
	if a.Op != OpAdapt || !a.Type.Same(mt) {
		t.Fatal("Adapt node malformed")
	}
}

// Property: constant folding of Add agrees with machine arithmetic.
func TestAddFoldQuick(t *testing.T) {
	b := NewBuilder()
	u16 := BV(16, false)
	err := quick.Check(func(x, y uint16) bool {
		n := b.Add(b.BVConst(u16, uint64(x)), b.BVConst(u16, uint64(y)))
		return n.Op == OpConst && uint16(n.UVal) == x+y
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestVarAllocation(t *testing.T) {
	b := NewBuilder()
	x := b.Var(Bool(), "x")
	y := b.Var(Bool(), "y")
	if x.VarID == y.VarID {
		t.Fatal("variables must have distinct IDs")
	}
	if x == y {
		t.Fatal("variables must be distinct nodes")
	}
}
