package core

import (
	"fmt"
	"strings"
)

// String renders the node as a depth-limited s-expression for diagnostics.
// Shared sub-DAGs print repeatedly (use Dot for structure-preserving
// output).
func (n *Node) String() string {
	var b strings.Builder
	writeNode(&b, n, 6)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, depth int) {
	switch n.Op {
	case OpConst:
		if n.Type.Kind == KindBool {
			fmt.Fprintf(b, "%v", n.BVal)
		} else if n.Type.Signed {
			fmt.Fprintf(b, "%d", n.Type.ToSigned(n.UVal))
		} else {
			fmt.Fprintf(b, "%d", n.UVal)
		}
		return
	case OpVar:
		fmt.Fprintf(b, "%s#%d", n.Name, n.VarID)
		return
	}
	if depth == 0 {
		b.WriteString("(...)")
		return
	}
	b.WriteByte('(')
	b.WriteString(n.Op.String())
	switch n.Op {
	case OpGetField, OpWithField:
		base := n.Kids[0].Type
		fmt.Fprintf(b, " .%s", base.Fields[n.Index].Name)
	case OpShl, OpShr:
		fmt.Fprintf(b, " %d", n.Index)
	}
	for _, k := range n.Kids {
		b.WriteByte(' ')
		writeNode(b, k, depth-1)
	}
	b.WriteByte(')')
}

// Dot renders the DAG rooted at n in Graphviz dot syntax, preserving
// sharing (one graph node per DAG node).
func Dot(n *Node) string {
	var b strings.Builder
	b.WriteString("digraph zen {\n  node [shape=box, fontsize=10];\n")
	seen := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		label := n.Op.String()
		switch n.Op {
		case OpConst:
			if n.Type.Kind == KindBool {
				label = fmt.Sprintf("%v", n.BVal)
			} else {
				label = fmt.Sprintf("%d", n.UVal)
			}
		case OpVar:
			label = fmt.Sprintf("%s#%d", n.Name, n.VarID)
		case OpGetField, OpWithField:
			label = fmt.Sprintf("%s .%s", n.Op, n.Kids[0].Type.Fields[n.Index].Name)
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID(), label)
		for i, k := range n.Kids {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d\"];\n", n.ID(), k.ID(), i)
			walk(k)
		}
	}
	walk(n)
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a DAG for diagnostics and model-size reporting.
type Stats struct {
	Nodes int // distinct DAG nodes
	Depth int // longest root-to-leaf path
	Vars  int // distinct variables
}

// Measure computes DAG statistics.
func Measure(n *Node) Stats {
	depth := make(map[*Node]int)
	vars := make(map[int32]bool)
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if d, ok := depth[n]; ok {
			return d
		}
		if n.Op == OpVar {
			vars[n.VarID] = true
		}
		d := 0
		for _, k := range n.Kids {
			if kd := walk(k); kd > d {
				d = kd
			}
		}
		depth[n] = d + 1
		return d + 1
	}
	root := walk(n)
	return Stats{Nodes: len(depth), Depth: root, Vars: len(vars)}
}
