package core

import (
	"fmt"
	"strings"
)

// This file renders types and expression DAGs back into Go source over the
// Builder API. It is the output format of the differential fuzzer's
// shrinker (internal/fuzz): a minimized failing expression is printed as a
// compilable snippet that can be pasted into a regression test verbatim.
//
// Printing is fully inline (no locals for shared sub-DAGs): shrunk repros
// are small, and rebuilding the printed expression through a Builder
// re-establishes sharing via hash-consing, so semantics are unchanged.

// GoType renders a type as a Go expression constructing it via this
// package's type constructors.
func GoType(t *Type) string {
	switch t.Kind {
	case KindBool:
		return "core.Bool()"
	case KindBV:
		return fmt.Sprintf("core.BV(%d, %v)", t.Width, t.Signed)
	case KindObject:
		var b strings.Builder
		fmt.Fprintf(&b, "core.Object(%q", t.TypeName)
		for _, f := range t.Fields {
			fmt.Fprintf(&b, ", core.Field{Name: %q, Type: %s}", f.Name, GoType(f.Type))
		}
		b.WriteByte(')')
		return b.String()
	case KindList:
		return "core.List(" + GoType(t.Elem) + ")"
	}
	panic("core: unknown kind")
}

// GoExpr renders the DAG rooted at n as a Go expression over a Builder
// named b. names maps free variable nodes to Go identifiers; variables
// bound by OpListCase are named automatically inside the emitted closure.
// The result compiles in any scope with `b *core.Builder` and the named
// variables in scope.
func GoExpr(n *Node, names map[*Node]string) string {
	p := &goPrinter{names: make(map[*Node]string, len(names))}
	for k, v := range names {
		p.names[k] = v
	}
	var b strings.Builder
	p.write(&b, n)
	return b.String()
}

type goPrinter struct {
	names   map[*Node]string
	binders int
}

func (p *goPrinter) write(b *strings.Builder, n *Node) {
	switch n.Op {
	case OpConst:
		if n.Type.Kind == KindBool {
			fmt.Fprintf(b, "b.BoolConst(%v)", n.BVal)
		} else {
			fmt.Fprintf(b, "b.BVConst(%s, %#x)", GoType(n.Type), n.UVal)
		}
	case OpVar:
		name, ok := p.names[n]
		if !ok {
			panic(fmt.Sprintf("core: GoExpr: unbound variable %s#%d", n.Name, n.VarID))
		}
		b.WriteString(name)
	case OpNot:
		p.call(b, "Not", n.Kids...)
	case OpAnd:
		p.call(b, "And", n.Kids...)
	case OpOr:
		p.call(b, "Or", n.Kids...)
	case OpEq:
		p.call(b, "Eq", n.Kids...)
	case OpLt:
		p.call(b, "Lt", n.Kids...)
	case OpAdd:
		p.call(b, "Add", n.Kids...)
	case OpSub:
		p.call(b, "Sub", n.Kids...)
	case OpMul:
		p.call(b, "Mul", n.Kids...)
	case OpBAnd:
		p.call(b, "BAnd", n.Kids...)
	case OpBOr:
		p.call(b, "BOr", n.Kids...)
	case OpBXor:
		p.call(b, "BXor", n.Kids...)
	case OpBNot:
		p.call(b, "BNot", n.Kids...)
	case OpShl, OpShr:
		method := "Shl"
		if n.Op == OpShr {
			method = "Shr"
		}
		fmt.Fprintf(b, "b.%s(", method)
		p.write(b, n.Kids[0])
		fmt.Fprintf(b, ", %d)", n.Index)
	case OpIf:
		p.call(b, "If", n.Kids...)
	case OpCreate:
		fmt.Fprintf(b, "b.Create(%s", GoType(n.Type))
		for _, k := range n.Kids {
			b.WriteString(", ")
			p.write(b, k)
		}
		b.WriteByte(')')
	case OpGetField:
		b.WriteString("b.GetField(")
		p.write(b, n.Kids[0])
		fmt.Fprintf(b, ", %d)", n.Index)
	case OpWithField:
		b.WriteString("b.WithField(")
		p.write(b, n.Kids[0])
		fmt.Fprintf(b, ", %d, ", n.Index)
		p.write(b, n.Kids[1])
		b.WriteByte(')')
	case OpListNil:
		fmt.Fprintf(b, "b.ListNil(%s)", GoType(n.Type))
	case OpListCons:
		p.call(b, "ListCons", n.Kids...)
	case OpListCase:
		p.binders++
		head := fmt.Sprintf("h%d", p.binders)
		tail := fmt.Sprintf("t%d", p.binders)
		b.WriteString("b.ListCase(")
		p.write(b, n.Kids[0])
		b.WriteString(", ")
		p.write(b, n.Kids[1])
		fmt.Fprintf(b, ", func(%s, %s *core.Node) *core.Node { return ", head, tail)
		p.names[n.Bound[0]] = head
		p.names[n.Bound[1]] = tail
		p.write(b, n.Kids[2])
		delete(p.names, n.Bound[0])
		delete(p.names, n.Bound[1])
		b.WriteString(" })")
	case OpAdapt:
		fmt.Fprintf(b, "b.Adapt(%s, ", GoType(n.Type))
		p.write(b, n.Kids[0])
		b.WriteByte(')')
	case OpCast:
		b.WriteString("b.Cast(")
		p.write(b, n.Kids[0])
		fmt.Fprintf(b, ", %s)", GoType(n.Type))
	default:
		panic("core: GoExpr: unhandled op " + n.Op.String())
	}
}

func (p *goPrinter) call(b *strings.Builder, method string, kids ...*Node) {
	fmt.Fprintf(b, "b.%s(", method)
	for i, k := range kids {
		if i > 0 {
			b.WriteString(", ")
		}
		p.write(b, k)
	}
	b.WriteByte(')')
}
