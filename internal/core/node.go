package core

import (
	"fmt"
	"sync"
)

// Op identifies an expression construct of the Zen abstract syntax
// (Figure 9 of the paper).
type Op uint8

// Expression operators.
const (
	OpConst Op = iota // scalar constant (bool or bitvector)
	OpVar             // symbolic input variable (bool or bitvector leaf)

	OpNot
	OpAnd
	OpOr

	OpEq // any type
	OpLt // bitvectors, signedness from operand type

	OpAdd
	OpSub
	OpMul
	OpBAnd
	OpBOr
	OpBXor
	OpBNot
	OpShl // shift left by constant Amount
	OpShr // logical shift right by constant Amount

	OpIf

	OpCreate    // object creation; kids are field values in type order
	OpGetField  // kids[0] = object; Index selects the field
	OpWithField // kids[0] = object, kids[1] = new field value; Index selects

	OpListNil  // empty list
	OpListCons // kids[0] = head, kids[1] = tail
	OpListCase // kids[0] = list, kids[1] = empty branch, kids[2] = cons branch
	// For OpListCase, Bound[0] and Bound[1] are the OpVar nodes bound to
	// the head and tail within the cons branch.

	OpAdapt // type coercion marker for extensibility (§5 of the paper)

	OpCast // bitvector width conversion: truncate or (sign-)extend
)

var opNames = map[Op]string{
	OpConst: "const", OpVar: "var", OpNot: "not", OpAnd: "and", OpOr: "or",
	OpEq: "eq", OpLt: "lt", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpBAnd: "band", OpBOr: "bor", OpBXor: "bxor", OpBNot: "bnot",
	OpShl: "shl", OpShr: "shr", OpIf: "if", OpCreate: "create",
	OpGetField: "get", OpWithField: "with", OpListNil: "nil",
	OpListCons: "cons", OpListCase: "case", OpAdapt: "adapt",
	OpCast: "cast",
}

func (o Op) String() string { return opNames[o] }

// Node is a hash-consed expression node. Nodes must be created through a
// Builder; two structurally identical expressions built by the same Builder
// are the same pointer, so pointer comparison is structural equality.
type Node struct {
	Op   Op
	Type *Type
	Kids []*Node

	// Payload fields (which are meaningful depends on Op):
	BVal   bool    // OpConst bool
	UVal   uint64  // OpConst bitvector (raw bits, masked to width)
	Name   string  // OpVar: diagnostic name
	VarID  int32   // OpVar: unique variable identifier
	Index  int     // OpGetField/OpWithField field index; OpShl/OpShr amount
	Bound  []*Node // OpListCase: bound head/tail variables
	nodeID int64   // unique per builder, used for hashing
}

// ID returns the node's builder-unique identity.
func (n *Node) ID() int64 { return n.nodeID }

// Builder creates and hash-conses nodes. It is safe for concurrent use.
type Builder struct {
	mu      sync.Mutex
	buckets map[uint64][]*Node
	nextID  int64
	nextVar int32
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{buckets: make(map[uint64][]*Node, 1024)}
}

func (b *Builder) hash(op Op, t *Type, kids []*Node, bval bool, uval uint64, varID int32, index int) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(op))
	for _, c := range t.String() {
		mix(uint64(c))
	}
	for _, k := range kids {
		mix(uint64(k.nodeID))
	}
	if bval {
		mix(1)
	}
	mix(uval)
	mix(uint64(varID))
	mix(uint64(index))
	return h
}

func sameNode(n *Node, op Op, t *Type, kids []*Node, bval bool, uval uint64, varID int32, index int) bool {
	if n.Op != op || !n.Type.Same(t) || len(n.Kids) != len(kids) {
		return false
	}
	for i, k := range kids {
		if n.Kids[i] != k {
			return false
		}
	}
	return n.BVal == bval && n.UVal == uval && n.VarID == varID && n.Index == index
}

// intern returns the canonical node for the given shape, creating it if
// needed. Nodes with bound variables (OpListCase) are not interned because
// their binders are unique.
func (b *Builder) intern(op Op, t *Type, kids []*Node, bval bool, uval uint64, varID int32, index int) *Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hash(op, t, kids, bval, uval, varID, index)
	for _, n := range b.buckets[h] {
		if sameNode(n, op, t, kids, bval, uval, varID, index) {
			return n
		}
	}
	b.nextID++
	n := &Node{Op: op, Type: t, Kids: kids, BVal: bval, UVal: uval,
		VarID: varID, Index: index, nodeID: b.nextID}
	b.buckets[h] = append(b.buckets[h], n)
	return n
}

// fresh allocates a non-interned node (used for binders and case nodes).
func (b *Builder) fresh(n *Node) *Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	n.nodeID = b.nextID
	return n
}

// ReserveVars advances the builder's variable counter past id, so
// binders allocated while rebuilding a DAG from another builder cannot
// collide with variable ids minted elsewhere.
func (b *Builder) ReserveVars(id int32) {
	b.mu.Lock()
	if b.nextVar < id {
		b.nextVar = id
	}
	b.mu.Unlock()
}

// NumNodes returns the number of distinct interned nodes, a rough measure
// of model size.
func (b *Builder) NumNodes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextID
}

// --- Leaf constructors ---

// BoolConst returns the boolean constant v.
func (b *Builder) BoolConst(v bool) *Node {
	return b.intern(OpConst, Bool(), nil, v, 0, 0, 0)
}

// BVConst returns the bitvector constant v of type t (masked to width).
func (b *Builder) BVConst(t *Type, v uint64) *Node {
	mustBV(t)
	return b.intern(OpConst, t, nil, false, t.Mask(v), 0, 0)
}

// Var returns a fresh symbolic variable of any type. Evaluators bind the
// variable in their environments; symbolic backends expand composite
// variables into structured collections of decision bits (sym.Fresh).
func (b *Builder) Var(t *Type, name string) *Node {
	b.mu.Lock()
	b.nextVar++
	id := b.nextVar
	b.nextID++
	n := &Node{Op: OpVar, Type: t, Name: name, VarID: id, nodeID: b.nextID}
	b.mu.Unlock()
	return n
}

func mustBV(t *Type) {
	if t.Kind != KindBV {
		panic("core: operation requires bitvector operands, got " + t.String())
	}
}

func mustSame(a, b *Type) {
	if !a.Same(b) {
		panic(fmt.Sprintf("core: type mismatch: %s vs %s", a, b))
	}
}

// --- Boolean operators (with local simplification) ---

// Not returns the negation of x.
func (b *Builder) Not(x *Node) *Node {
	mustSame(x.Type, Bool())
	if x.Op == OpConst {
		return b.BoolConst(!x.BVal)
	}
	if x.Op == OpNot {
		return x.Kids[0]
	}
	return b.intern(OpNot, Bool(), []*Node{x}, false, 0, 0, 0)
}

// And returns the conjunction of x and y.
func (b *Builder) And(x, y *Node) *Node {
	mustSame(x.Type, Bool())
	mustSame(y.Type, Bool())
	if x.Op == OpConst {
		if x.BVal {
			return y
		}
		return x
	}
	if y.Op == OpConst {
		if y.BVal {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	return b.intern(OpAnd, Bool(), []*Node{x, y}, false, 0, 0, 0)
}

// Or returns the disjunction of x and y.
func (b *Builder) Or(x, y *Node) *Node {
	mustSame(x.Type, Bool())
	mustSame(y.Type, Bool())
	if x.Op == OpConst {
		if x.BVal {
			return x
		}
		return y
	}
	if y.Op == OpConst {
		if y.BVal {
			return y
		}
		return x
	}
	if x == y {
		return x
	}
	return b.intern(OpOr, Bool(), []*Node{x, y}, false, 0, 0, 0)
}

// --- Comparisons ---

// Eq returns the structural equality of x and y (any type).
func (b *Builder) Eq(x, y *Node) *Node {
	mustSame(x.Type, y.Type)
	if x == y {
		return b.BoolConst(true)
	}
	if x.Op == OpConst && y.Op == OpConst {
		if x.Type.Kind == KindBool {
			return b.BoolConst(x.BVal == y.BVal)
		}
		return b.BoolConst(x.UVal == y.UVal)
	}
	// Push equality-with-a-constant through conditionals: for if-chains
	// ending in constants (line tracking, match indices) the comparison
	// folds per branch, turning an n-deep chain over k-bit values into a
	// boolean chain — the shape custom tools compute directly.
	if y.Op == OpConst && x.Op == OpIf {
		return b.If(x.Kids[0], b.Eq(x.Kids[1], y), b.Eq(x.Kids[2], y))
	}
	if x.Op == OpConst && y.Op == OpIf {
		return b.If(y.Kids[0], b.Eq(x, y.Kids[1]), b.Eq(x, y.Kids[2]))
	}
	return b.intern(OpEq, Bool(), []*Node{x, y}, false, 0, 0, 0)
}

// Lt returns x < y with the signedness of the operand type.
func (b *Builder) Lt(x, y *Node) *Node {
	mustBV(x.Type)
	mustSame(x.Type, y.Type)
	if x == y {
		return b.BoolConst(false)
	}
	if x.Op == OpConst && y.Op == OpConst {
		t := x.Type
		if t.Signed {
			return b.BoolConst(t.ToSigned(x.UVal) < t.ToSigned(y.UVal))
		}
		return b.BoolConst(x.UVal < y.UVal)
	}
	return b.intern(OpLt, Bool(), []*Node{x, y}, false, 0, 0, 0)
}

// --- Arithmetic and bitwise operators ---

func (b *Builder) binBV(op Op, x, y *Node, fold func(t *Type, a, c uint64) uint64) *Node {
	mustBV(x.Type)
	mustSame(x.Type, y.Type)
	if x.Op == OpConst && y.Op == OpConst {
		return b.BVConst(x.Type, fold(x.Type, x.UVal, y.UVal))
	}
	return b.intern(op, x.Type, []*Node{x, y}, false, 0, 0, 0)
}

// Add returns x + y with wraparound semantics.
func (b *Builder) Add(x, y *Node) *Node {
	if y.Op == OpConst && y.UVal == 0 {
		return x
	}
	if x.Op == OpConst && x.UVal == 0 {
		return y
	}
	return b.binBV(OpAdd, x, y, func(t *Type, a, c uint64) uint64 { return t.Mask(a + c) })
}

// Sub returns x - y with wraparound semantics.
func (b *Builder) Sub(x, y *Node) *Node {
	if y.Op == OpConst && y.UVal == 0 {
		return x
	}
	return b.binBV(OpSub, x, y, func(t *Type, a, c uint64) uint64 { return t.Mask(a - c) })
}

// Mul returns x * y with wraparound semantics.
func (b *Builder) Mul(x, y *Node) *Node {
	return b.binBV(OpMul, x, y, func(t *Type, a, c uint64) uint64 { return t.Mask(a * c) })
}

// BAnd returns the bitwise conjunction of x and y.
func (b *Builder) BAnd(x, y *Node) *Node {
	if x == y {
		return x
	}
	return b.binBV(OpBAnd, x, y, func(t *Type, a, c uint64) uint64 { return a & c })
}

// BOr returns the bitwise disjunction of x and y.
func (b *Builder) BOr(x, y *Node) *Node {
	if x == y {
		return x
	}
	return b.binBV(OpBOr, x, y, func(t *Type, a, c uint64) uint64 { return a | c })
}

// BXor returns the bitwise exclusive-or of x and y.
func (b *Builder) BXor(x, y *Node) *Node {
	return b.binBV(OpBXor, x, y, func(t *Type, a, c uint64) uint64 { return a ^ c })
}

// BNot returns the bitwise complement of x.
func (b *Builder) BNot(x *Node) *Node {
	mustBV(x.Type)
	if x.Op == OpConst {
		return b.BVConst(x.Type, ^x.UVal)
	}
	if x.Op == OpBNot {
		return x.Kids[0]
	}
	return b.intern(OpBNot, x.Type, []*Node{x}, false, 0, 0, 0)
}

// Shl returns x shifted left by the constant amount.
func (b *Builder) Shl(x *Node, amount int) *Node {
	mustBV(x.Type)
	if amount < 0 {
		panic("core: negative shift")
	}
	if amount == 0 {
		return x
	}
	if x.Op == OpConst {
		if amount >= x.Type.Width {
			return b.BVConst(x.Type, 0)
		}
		return b.BVConst(x.Type, x.UVal<<uint(amount))
	}
	return b.intern(OpShl, x.Type, []*Node{x}, false, 0, 0, amount)
}

// Shr returns x logically shifted right by the constant amount.
func (b *Builder) Shr(x *Node, amount int) *Node {
	mustBV(x.Type)
	if amount < 0 {
		panic("core: negative shift")
	}
	if amount == 0 {
		return x
	}
	if x.Op == OpConst {
		if amount >= x.Type.Width {
			return b.BVConst(x.Type, 0)
		}
		return b.BVConst(x.Type, x.Type.Mask(x.UVal)>>uint(amount))
	}
	return b.intern(OpShr, x.Type, []*Node{x}, false, 0, 0, amount)
}

// --- Control flow ---

// If returns "if c then t else f". The branches must share a type.
func (b *Builder) If(c, t, f *Node) *Node {
	mustSame(c.Type, Bool())
	mustSame(t.Type, f.Type)
	if c.Op == OpConst {
		if c.BVal {
			return t
		}
		return f
	}
	if t == f {
		return t
	}
	// if c then true else f  ==  c or f   (and dual simplifications)
	if t.Type.Kind == KindBool {
		if t.Op == OpConst && f.Op == OpConst {
			if t.BVal && !f.BVal {
				return c
			}
			if !t.BVal && f.BVal {
				return b.Not(c)
			}
		}
		if t.Op == OpConst {
			if t.BVal {
				return b.Or(c, f)
			}
			return b.And(b.Not(c), f)
		}
		if f.Op == OpConst {
			if f.BVal {
				return b.Or(b.Not(c), t)
			}
			return b.And(c, t)
		}
	}
	return b.intern(OpIf, t.Type, []*Node{c, t, f}, false, 0, 0, 0)
}

// --- Objects ---

// Create builds an object of type t from field values given in field order.
func (b *Builder) Create(t *Type, fields ...*Node) *Node {
	if t.Kind != KindObject {
		panic("core: Create requires an object type")
	}
	if len(fields) != len(t.Fields) {
		panic(fmt.Sprintf("core: Create %s: got %d fields, want %d", t, len(fields), len(t.Fields)))
	}
	for i, f := range fields {
		mustSame(f.Type, t.Fields[i].Type)
	}
	return b.intern(OpCreate, t, fields, false, 0, 0, 0)
}

// GetField projects the i-th field out of object o.
func (b *Builder) GetField(o *Node, i int) *Node {
	if o.Type.Kind != KindObject {
		panic("core: GetField on non-object " + o.Type.String())
	}
	if i < 0 || i >= len(o.Type.Fields) {
		panic("core: GetField index out of range")
	}
	if o.Op == OpCreate {
		return o.Kids[i]
	}
	if o.Op == OpWithField {
		if o.Index == i {
			return o.Kids[1]
		}
		return b.GetField(o.Kids[0], i)
	}
	if o.Op == OpIf {
		// Push projection through conditionals: the field of a merged
		// object is the merge of the fields. Hash-consing bounds the
		// blowup, and downstream analyses (dataflow ordering, symbolic
		// evaluation) see much simpler shapes.
		return b.If(o.Kids[0], b.GetField(o.Kids[1], i), b.GetField(o.Kids[2], i))
	}
	return b.intern(OpGetField, o.Type.Fields[i].Type, []*Node{o}, false, 0, 0, i)
}

// WithField returns o with the i-th field replaced by v.
func (b *Builder) WithField(o *Node, i int, v *Node) *Node {
	if o.Type.Kind != KindObject {
		panic("core: WithField on non-object " + o.Type.String())
	}
	if i < 0 || i >= len(o.Type.Fields) {
		panic("core: WithField index out of range")
	}
	mustSame(v.Type, o.Type.Fields[i].Type)
	if o.Op == OpCreate {
		kids := append([]*Node(nil), o.Kids...)
		kids[i] = v
		return b.Create(o.Type, kids...)
	}
	return b.intern(OpWithField, o.Type, []*Node{o, v}, false, 0, 0, i)
}

// --- Lists ---

// ListNil returns the empty list of the given list type.
func (b *Builder) ListNil(t *Type) *Node {
	if t.Kind != KindList {
		panic("core: ListNil requires a list type")
	}
	return b.intern(OpListNil, t, nil, false, 0, 0, 0)
}

// ListCons prepends head to tail.
func (b *Builder) ListCons(head, tail *Node) *Node {
	if tail.Type.Kind != KindList {
		panic("core: ListCons tail must be a list")
	}
	mustSame(head.Type, tail.Type.Elem)
	return b.intern(OpListCons, tail.Type, []*Node{head, tail}, false, 0, 0, 0)
}

// ListCase eliminates a list: mkBranches receives fresh variables bound to
// the head and tail and must return the cons branch; empty is the branch
// for the empty list. Both branches must share a result type.
func (b *Builder) ListCase(list, empty *Node, mkCons func(head, tail *Node) *Node) *Node {
	if list.Type.Kind != KindList {
		panic("core: ListCase requires a list")
	}
	switch list.Op {
	case OpListNil:
		return empty
	case OpListCons:
		return mkCons(list.Kids[0], list.Kids[1])
	}
	headVar := b.boundVar(list.Type.Elem, "case.head")
	tailVar := b.boundVar(list.Type, "case.tail")
	cons := mkCons(headVar, tailVar)
	mustSame(empty.Type, cons.Type)
	n := b.fresh(&Node{
		Op:    OpListCase,
		Type:  empty.Type,
		Kids:  []*Node{list, empty, cons},
		Bound: []*Node{headVar, tailVar},
	})
	return n
}

// boundVar allocates a binder variable of any type (only legal inside
// ListCase branches; evaluators bind it in their environments).
func (b *Builder) boundVar(t *Type, name string) *Node {
	b.mu.Lock()
	b.nextVar++
	id := b.nextVar
	b.nextID++
	n := &Node{Op: OpVar, Type: t, Name: name, VarID: id, nodeID: b.nextID}
	b.mu.Unlock()
	return n
}

// Cast converts a bitvector to another width: truncation when narrowing,
// sign-extension when the source type is signed, zero-extension otherwise.
func (b *Builder) Cast(x *Node, to *Type) *Node {
	mustBV(x.Type)
	mustBV(to)
	if x.Type.Width == to.Width && x.Type.Signed == to.Signed {
		return x
	}
	if x.Op == OpConst {
		v := x.UVal
		if x.Type.Signed {
			v = uint64(x.Type.ToSigned(v))
		}
		return b.BVConst(to, v)
	}
	return b.intern(OpCast, to, []*Node{x}, false, 0, 0, 0)
}

// Adapt marks a coercion of e to type t; evaluators treat it as identity on
// the underlying representation. It exists so new user-facing types can be
// implemented in terms of existing ones (§5).
func (b *Builder) Adapt(t *Type, e *Node) *Node {
	return b.intern(OpAdapt, t, []*Node{e}, false, 0, 0, 0)
}
