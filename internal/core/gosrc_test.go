package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// gosrcCases enumerates one expression per operator. The golden file pins
// both renderings — the diagnostic s-expression (Node.String) and the Go
// source emitted for shrunk fuzzer repros (GoExpr) — so any drift in either
// printer is caught before it invalidates checked-in regression tests.
func gosrcCases() (cases []struct {
	name string
	n    *Node
}, names map[*Node]string) {
	b := NewBuilder()
	u8 := BV(8, false)
	s16 := BV(16, true)
	obj := Object("Hdr", Field{Name: "Src", Type: u8}, Field{Name: "Ok", Type: Bool()})
	lst := List(u8)

	x := b.Var(u8, "x")
	p := b.Var(Bool(), "p")
	o := b.Var(obj, "o")
	l := b.Var(lst, "l")
	names = map[*Node]string{x: "x", p: "p", o: "o", l: "l"}

	add := func(name string, n *Node) {
		cases = append(cases, struct {
			name string
			n    *Node
		}{name, n})
	}
	add("bool-const", b.BoolConst(true))
	add("bv-const", b.BVConst(s16, 0xfff0))
	add("var", x)
	add("not", b.Not(p))
	add("and", b.And(p, b.BoolConst(false)))
	add("or", b.Or(p, b.Not(p)))
	add("eq", b.Eq(x, b.BVConst(u8, 7)))
	add("lt-signed", b.Lt(b.Cast(x, s16), b.BVConst(s16, 0)))
	add("add", b.Add(x, b.BVConst(u8, 1)))
	add("sub", b.Sub(x, x))
	add("mul", b.Mul(x, b.BVConst(u8, 3)))
	add("band", b.BAnd(x, b.BVConst(u8, 0x0f)))
	add("bor", b.BOr(x, b.BVConst(u8, 0xf0)))
	add("bxor", b.BXor(x, b.BVConst(u8, 0xff)))
	add("bnot", b.BNot(x))
	add("shl", b.Shl(x, 3))
	add("shr-overflow", b.Shr(x, 9))
	add("if", b.If(p, x, b.BVConst(u8, 0)))
	add("create", b.Create(obj, b.BVConst(u8, 1), b.BoolConst(true)))
	add("get-field", b.GetField(o, 0))
	add("with-field", b.WithField(o, 1, p))
	add("list-nil", b.ListNil(lst))
	add("list-cons", b.ListCons(x, l))
	add("list-case", b.ListCase(l, b.BVConst(u8, 0), func(h, t *Node) *Node {
		return b.Add(h, b.ListCase(t, b.BVConst(u8, 0), func(h2, t2 *Node) *Node { return h2 }))
	}))
	add("cast", b.Cast(x, s16))
	return cases, names
}

func TestGoSrcGolden(t *testing.T) {
	cases, names := gosrcCases()
	var out strings.Builder
	for _, c := range cases {
		fmt.Fprintf(&out, "%s\n  sexpr: %s\n  gosrc: %s\n", c.name, c.n, GoExpr(c.n, names))
	}
	golden := filepath.Join("testdata", "gosrc.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if out.String() != string(want) {
		t.Fatalf("printer output drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestGoTypeGolden(t *testing.T) {
	types := []*Type{
		Bool(),
		BV(1, false),
		BV(48, true),
		Object("Pair", Field{Name: "A", Type: BV(4, false)}, Field{Name: "B", Type: List(Bool())}),
		List(Object("E", Field{Name: "V", Type: BV(64, false)})),
	}
	var out strings.Builder
	for _, typ := range types {
		fmt.Fprintf(&out, "%s => %s\n", typ, GoType(typ))
	}
	golden := filepath.Join("testdata", "gotype.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if out.String() != string(want) {
		t.Fatalf("GoType output drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

// TestGoExprRoundTrip: the emitted source, replayed through a builder (here
// by hand for one representative expression), hash-conses back to the same
// node. internal/fuzz/shrink_regress_test.go proves full compilability of
// pasted output.
func TestGoExprRoundTrip(t *testing.T) {
	b := NewBuilder()
	u8 := BV(8, false)
	x := b.Var(u8, "x")
	orig := b.And(b.Lt(x, b.BVConst(u8, 10)), b.Not(b.Eq(x, b.BVConst(u8, 3))))
	// Replay of GoExpr(orig): b.And(b.Lt(x, b.BVConst(...)), b.Not(b.Eq(...)))
	replayed := b.And(b.Lt(x, b.BVConst(u8, 10)), b.Not(b.Eq(x, b.BVConst(u8, 3))))
	if orig != replayed {
		t.Fatalf("hash-consing did not unify replayed expression")
	}
	// Unbound variables are a caller bug and must fail loudly, not emit
	// uncompilable source.
	defer func() {
		if recover() == nil {
			t.Fatalf("GoExpr accepted an unbound variable")
		}
	}()
	GoExpr(orig, nil)
}
