// Package core implements the Zen intermediate language: its type system
// and its hash-consed expression DAG (the abstract syntax of Figure 9 in the
// paper). The public zen package wraps this with a typed, generics-based
// façade; analysis backends (interp, sym, stateset, testgen, compilejit)
// consume the DAG produced here.
package core

import (
	"fmt"
	"strings"
)

// Kind classifies Zen types.
type Kind uint8

// Type kinds.
const (
	KindBool Kind = iota
	KindBV        // fixed-width bitvector (byte..ulong in the paper)
	KindObject
	KindList
)

// Field is a named, typed member of an object type.
type Field struct {
	Name string
	Type *Type
}

// Type describes a Zen type. Types are immutable after construction and
// compared structurally via their String form; use the constructors below.
type Type struct {
	Kind   Kind
	Width  int  // KindBV: number of bits (1..64)
	Signed bool // KindBV: signed comparison/ordering semantics
	Fields []Field
	Elem   *Type // KindList
	// TypeName is an optional human-readable name for object types (the Go
	// struct name); it does not affect structural identity.
	TypeName string

	str string // cached structural string
}

var boolType = &Type{Kind: KindBool, str: "bool"}

// Bool returns the boolean type.
func Bool() *Type { return boolType }

var bvCache [65][2]*Type

// BV returns the bitvector type of the given width and signedness.
// Width must be between 1 and 64.
func BV(width int, signed bool) *Type {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("core: invalid bitvector width %d", width))
	}
	idx := 0
	if signed {
		idx = 1
	}
	if t := bvCache[width][idx]; t != nil {
		return t
	}
	s := "u"
	if signed {
		s = "i"
	}
	t := &Type{Kind: KindBV, Width: width, Signed: signed, str: fmt.Sprintf("%sbv%d", s, width)}
	bvCache[width][idx] = t
	return t
}

// Object returns an object type with the given ordered fields.
func Object(name string, fields ...Field) *Type {
	var b strings.Builder
	b.WriteByte('{')
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.Name)
		b.WriteByte(':')
		b.WriteString(f.Type.String())
	}
	b.WriteByte('}')
	return &Type{Kind: KindObject, Fields: fields, TypeName: name, str: b.String()}
}

// List returns the list type with the given element type.
func List(elem *Type) *Type {
	return &Type{Kind: KindList, Elem: elem, str: "list[" + elem.String() + "]"}
}

// Option returns the option type over elem, encoded as the paper describes:
// an object with a HasValue flag and a Value field.
func Option(elem *Type) *Type {
	return Object("Option",
		Field{Name: "HasValue", Type: Bool()},
		Field{Name: "Value", Type: elem})
}

// Pair returns a two-tuple type, encoded as an object with Item1/Item2
// fields (as in the paper's C# embedding).
func Pair(a, b *Type) *Type {
	return Object("Pair",
		Field{Name: "Item1", Type: a},
		Field{Name: "Item2", Type: b})
}

// String returns the structural representation of the type. Two types are
// interchangeable exactly when their String values are equal.
func (t *Type) String() string { return t.str }

// Same reports structural equality of types.
func (t *Type) Same(o *Type) bool {
	return t == o || t.str == o.str
}

// FieldIndex returns the index of the named field, or -1.
func (t *Type) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// NumBits returns the number of boolean decision bits needed to represent a
// value of this type symbolically, excluding list length bookkeeping. Lists
// are counted with the given bound on length.
func (t *Type) NumBits(listBound int) int {
	switch t.Kind {
	case KindBool:
		return 1
	case KindBV:
		return t.Width
	case KindObject:
		n := 0
		for _, f := range t.Fields {
			n += f.Type.NumBits(listBound)
		}
		return n
	case KindList:
		return listBound + listBound*t.Elem.NumBits(listBound)
	}
	panic("core: unknown kind")
}

// MaxUint returns the largest unsigned value representable in a bitvector
// of this type's width.
func (t *Type) MaxUint() uint64 {
	if t.Width == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(t.Width)) - 1
}

// Mask truncates v to the type's width.
func (t *Type) Mask(v uint64) uint64 { return v & t.MaxUint() }

// SignBit reports whether the sign bit of v is set under this type's width.
func (t *Type) SignBit(v uint64) bool {
	return v&(uint64(1)<<uint(t.Width-1)) != 0
}

// ToSigned sign-extends the type-width value v to a Go int64.
func (t *Type) ToSigned(v uint64) int64 {
	v = t.Mask(v)
	if t.SignBit(v) {
		return int64(v | ^t.MaxUint())
	}
	return int64(v)
}
