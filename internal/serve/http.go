package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"zen-go/internal/obs"
)

// maxBatch bounds /v1/batch fan-out per request.
const maxBatch = 64

// Handler returns the service's HTTP surface:
//
//	GET  /v1/models     model registry listing with argument/result types
//	POST /v1/query      one Request -> one Response
//	POST /v1/batch      {"queries": [Request...]} -> {"results": [Response...]}
//	POST /v1/evaluate   NDJSON stream: header + input lines -> result lines (see stream.go)
//	POST /v1/instances  create a mutable model instance from a rule list
//	GET  /v1/instances  list instances with family/generation/rule counts
//	POST /v1/update     apply rule deltas; delta re-verify tracked queries
//	GET  /v1/lint       lint registry models (same schema as zenlint -json)
//	GET  /v1/stats      service counters and latency quantiles
//	GET  /metrics       Prometheus text-format exposition
//	GET  /healthz       200 while serving, 503 while draining
//	     /debug/...     the standard obs debug surface (zenstats, expvar, pprof)
//
// Every /v1 response carries an X-Zen-Request-Id header — the client's
// own if it sent one, a generated id otherwise.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/evaluate", s.handleEvaluateStream)
	mux.HandleFunc("/v1/instances", s.handleInstances)
	mux.HandleFunc("/v1/update", s.handleUpdate)
	mux.HandleFunc("/v1/lint", s.handleLint)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.Handle("/debug/", obs.DebugMux())
	return mux
}

// requestID resolves the request's id (honoring a client-sent
// X-Zen-Request-Id), echoes it on the response, and threads it through
// the context for Do.
func requestID(w http.ResponseWriter, r *http.Request) (context.Context, string) {
	id := r.Header.Get("X-Zen-Request-Id")
	if id == "" {
		id = NewRequestID()
	}
	w.Header().Set("X-Zen-Request-Id", id)
	return WithRequestID(r.Context(), id), id
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ModelInfo is one /v1/models entry.
type ModelInfo struct {
	Name string `json:"name"`
	// Args lists the argument types (refs "in"/"in0".. in predicates).
	Args []any `json:"args"`
	// Out is the result type (ref "out" in predicates).
	Out any `json:"out"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	out := make([]ModelInfo, 0, len(s.names))
	for _, name := range s.names {
		m := s.models[name].queryable()
		if m == nil {
			continue // registered but not queryable; zenlint-only
		}
		info := ModelInfo{Name: name, Out: typeDesc(m.QueryOut().Type)}
		for _, a := range m.QueryArgs() {
			info.Args = append(info.Args, typeDesc(a.Type))
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, id := requestID(w, r)
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errors.Add(1)
		res := failResponse(http.StatusBadRequest, ErrBadRequest, "bad request: %v", err)
		res.RequestID = id
		writeJSON(w, res.HTTPStatus(), res)
		return
	}
	res := s.Do(ctx, &req)
	writeJSON(w, res.HTTPStatus(), res)
}

// BatchRequest and BatchResponse wrap /v1/batch traffic. Queries decode
// per item: a malformed sub-query fails that item with a bad_request
// entry in its slot while the rest of the batch runs normally.
type BatchRequest struct {
	Queries []json.RawMessage `json:"queries"`
}

type BatchResponse struct {
	APIVersion string      `json:"api_version"`
	Results    []*Response `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, id := requestID(w, r)
	var batch BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		s.errors.Add(1)
		res := failResponse(http.StatusBadRequest, ErrBadRequest, "bad request: %v", err)
		res.RequestID = id
		writeJSON(w, res.HTTPStatus(), res)
		return
	}
	if len(batch.Queries) > maxBatch {
		s.errors.Add(1)
		res := failResponse(http.StatusBadRequest, ErrBatchTooLarge, "batch too large (max %d)", maxBatch)
		res.RequestID = id
		writeJSON(w, res.HTTPStatus(), res)
		return
	}
	res := s.DoBatchRaw(ctx, batch.Queries)
	writeJSON(w, http.StatusOK, &BatchResponse{APIVersion: APIVersion, Results: res})
}

// DoBatchRaw decodes and runs raw sub-queries concurrently. Decoding is
// per item, so one malformed entry yields one error response in its
// position instead of failing the whole batch.
func (s *Server) DoBatchRaw(ctx context.Context, raws []json.RawMessage) []*Response {
	reqs := make([]*Request, len(raws))
	out := make([]*Response, len(raws))
	batchID := RequestIDFrom(ctx)
	subID := func(i int) string {
		if batchID == "" {
			return ""
		}
		return fmt.Sprintf("%s/%d", batchID, i)
	}
	for i, raw := range raws {
		var req Request
		if err := json.Unmarshal(raw, &req); err != nil {
			s.errors.Add(1)
			res := failResponse(http.StatusBadRequest, ErrBadRequest, "query %d: %v", i, err)
			res.RequestID = subID(i)
			out[i] = res
			continue
		}
		reqs[i] = &req
	}
	done := make(chan int)
	n := 0
	for i := range reqs {
		if reqs[i] == nil {
			continue
		}
		n++
		go func(i int) {
			qctx := ctx
			if id := subID(i); id != "" {
				qctx = WithRequestID(ctx, id)
			}
			out[i] = s.Do(qctx, reqs[i])
			done <- i
		}(i)
	}
	for ; n > 0; n-- {
		<-done
	}
	return out
}

// DoBatch runs decoded queries concurrently (each contends for the
// worker pool like any other request) and returns responses in order.
// With a request id on the context, each sub-query gets "<id>/<index>"
// so slow-log lines and traces stay attributable within the batch.
func (s *Server) DoBatch(ctx context.Context, reqs []Request) []*Response {
	raws := make([]json.RawMessage, len(reqs))
	for i := range reqs {
		raw, err := json.Marshal(&reqs[i])
		if err != nil {
			raw = []byte("null")
		}
		raws[i] = raw
	}
	return s.DoBatchRaw(ctx, raws)
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"api_version": APIVersion,
			"instances":   s.Instances(),
		})
	case http.MethodPost:
		ctx, id := requestID(w, r)
		var req InstanceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			res := failUpdate(http.StatusBadRequest, ErrBadRequest, "bad request: %v", err)
			res.RequestID = id
			writeJSON(w, res.HTTPStatus(), res)
			return
		}
		res := s.CreateInstance(ctx, &req)
		writeJSON(w, res.HTTPStatus(), res)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, id := requestID(w, r)
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		res := failUpdate(http.StatusBadRequest, ErrBadRequest, "bad request: %v", err)
		res.RequestID = id
		writeJSON(w, res.HTTPStatus(), res)
		return
	}
	res := s.DoUpdate(ctx, &req)
	writeJSON(w, res.HTTPStatus(), res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}
