package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"zen-go/internal/obs"
)

// maxBatch bounds /v1/batch fan-out per request.
const maxBatch = 64

// Handler returns the service's HTTP surface:
//
//	GET  /v1/models   model registry listing with argument/result types
//	POST /v1/query    one Request -> one Response
//	POST /v1/batch    {"queries": [Request...]} -> {"results": [Response...]}
//	GET  /v1/stats    service counters and latency quantiles
//	GET  /metrics     Prometheus text-format exposition
//	GET  /healthz     200 while serving, 503 while draining
//	     /debug/...   the standard obs debug surface (zenstats, expvar, pprof)
//
// Every /v1/query and /v1/batch response carries an X-Zen-Request-Id
// header — the client's own if it sent one, a generated id otherwise.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.Handle("/debug/", obs.DebugMux())
	return mux
}

// requestID resolves the request's id (honoring a client-sent
// X-Zen-Request-Id), echoes it on the response, and threads it through
// the context for Do.
func requestID(w http.ResponseWriter, r *http.Request) (context.Context, string) {
	id := r.Header.Get("X-Zen-Request-Id")
	if id == "" {
		id = NewRequestID()
	}
	w.Header().Set("X-Zen-Request-Id", id)
	return WithRequestID(r.Context(), id), id
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ModelInfo is one /v1/models entry.
type ModelInfo struct {
	Name string `json:"name"`
	// Args lists the argument types (refs "in"/"in0".. in predicates).
	Args []any `json:"args"`
	// Out is the result type (ref "out" in predicates).
	Out any `json:"out"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	out := make([]ModelInfo, 0, len(s.names))
	for _, name := range s.names {
		m := s.models[name].queryable()
		if m == nil {
			continue // registered but not queryable; zenlint-only
		}
		info := ModelInfo{Name: name, Out: typeDesc(m.QueryOut().Type)}
		for _, a := range m.QueryArgs() {
			info.Args = append(info.Args, typeDesc(a.Type))
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, id := requestID(w, r)
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, &Response{Status: "error", Error: "bad request: " + err.Error(), RequestID: id})
		return
	}
	res := s.Do(ctx, &req)
	writeJSON(w, res.HTTPStatus(), res)
}

// BatchRequest and BatchResponse wrap /v1/batch traffic.
type BatchRequest struct {
	Queries []Request `json:"queries"`
}

type BatchResponse struct {
	Results []*Response `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, id := requestID(w, r)
	var batch BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, &Response{Status: "error", Error: "bad request: " + err.Error(), RequestID: id})
		return
	}
	if len(batch.Queries) > maxBatch {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, &Response{Status: "error", Error: "batch too large", RequestID: id})
		return
	}
	res := s.DoBatch(ctx, batch.Queries)
	writeJSON(w, http.StatusOK, &BatchResponse{Results: res})
}

// DoBatch runs the queries concurrently (each contends for the worker
// pool like any other request) and returns the responses in order. With
// a request id on the context, each sub-query gets "<id>/<index>" so
// slow-log lines and traces stay attributable within the batch.
func (s *Server) DoBatch(ctx context.Context, reqs []Request) []*Response {
	batchID := RequestIDFrom(ctx)
	out := make([]*Response, len(reqs))
	done := make(chan int)
	for i := range reqs {
		go func(i int) {
			qctx := ctx
			if batchID != "" {
				qctx = WithRequestID(ctx, fmt.Sprintf("%s/%d", batchID, i))
			}
			out[i] = s.Do(qctx, &reqs[i])
			done <- i
		}(i)
	}
	for range reqs {
		<-done
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}
