package serve

import (
	"context"
	"encoding/json"
	"net/http"

	"zen-go/internal/obs"
)

// maxBatch bounds /v1/batch fan-out per request.
const maxBatch = 64

// Handler returns the service's HTTP surface:
//
//	GET  /v1/models   model registry listing with argument/result types
//	POST /v1/query    one Request -> one Response
//	POST /v1/batch    {"queries": [Request...]} -> {"results": [Response...]}
//	GET  /v1/stats    service counters and latency quantiles
//	GET  /healthz     200 while serving, 503 while draining
//	     /debug/...   the standard obs debug surface (zenstats, expvar, pprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.Handle("/debug/", obs.DebugMux())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ModelInfo is one /v1/models entry.
type ModelInfo struct {
	Name string `json:"name"`
	// Args lists the argument types (refs "in"/"in0".. in predicates).
	Args []any `json:"args"`
	// Out is the result type (ref "out" in predicates).
	Out any `json:"out"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	out := make([]ModelInfo, 0, len(s.names))
	for _, name := range s.names {
		m := s.models[name].queryable()
		if m == nil {
			continue // registered but not queryable; zenlint-only
		}
		info := ModelInfo{Name: name, Out: typeDesc(m.QueryOut().Type)}
		for _, a := range m.QueryArgs() {
			info.Args = append(info.Args, typeDesc(a.Type))
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, &Response{Status: "error", Error: "bad request: " + err.Error()})
		return
	}
	res := s.Do(r.Context(), &req)
	writeJSON(w, res.HTTPStatus(), res)
}

// BatchRequest and BatchResponse wrap /v1/batch traffic.
type BatchRequest struct {
	Queries []Request `json:"queries"`
}

type BatchResponse struct {
	Results []*Response `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var batch BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, &Response{Status: "error", Error: "bad request: " + err.Error()})
		return
	}
	if len(batch.Queries) > maxBatch {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, &Response{Status: "error", Error: "batch too large"})
		return
	}
	res := s.DoBatch(r.Context(), batch.Queries)
	writeJSON(w, http.StatusOK, &BatchResponse{Results: res})
}

// DoBatch runs the queries concurrently (each contends for the worker
// pool like any other request) and returns the responses in order.
func (s *Server) DoBatch(ctx context.Context, reqs []Request) []*Response {
	out := make([]*Response, len(reqs))
	done := make(chan int)
	for i := range reqs {
		go func(i int) {
			out[i] = s.Do(ctx, &reqs[i])
			done <- i
		}(i)
	}
	for range reqs {
		<-done
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}
