package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"zen-go/internal/core"
	"zen-go/internal/interp"
	"zen-go/zen"
)

// Streaming evaluation: POST /v1/evaluate takes newline-delimited JSON —
// one header line naming the model, then one line per input — and
// answers with NDJSON: one start envelope, one result line per input (in
// input order, errors in their slot), and one trailer. Inputs are
// evaluated in chunks of streamChunk through the bitsliced batch engine
// (zen.EvaluateBatchRaw); models outside the bitslice fragment fall back
// to the scalar interpreter with identical results. Chunks run on the
// same bounded worker pool as queries, so a saturated solver queue
// backpressures the stream: the reader stops consuming input until a
// worker frees up, and TCP flow control propagates the stall to the
// client.

// streamChunk is the number of stream items evaluated per engine call —
// one bitsliced step's worth of lanes.
const streamChunk = zen.BatchLanes

// maxStreamLine bounds one NDJSON input line.
const maxStreamLine = 1 << 20

// StreamHeader is the first request line of a /v1/evaluate stream.
type StreamHeader struct {
	// Model names a registered model or a mutable instance.
	Model string `json:"model"`
	// TimeoutMS bounds the whole stream's evaluation time.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// StreamItem is one input line: the model's argument values, encoded
// like Request.Args, plus an optional client id echoed on the result.
type StreamItem struct {
	ID   string            `json:"id,omitempty"`
	Args []json.RawMessage `json:"args"`
}

// StreamStart is the first response line — the stream's envelope.
type StreamStart struct {
	APIVersion string `json:"api_version"`
	RequestID  string `json:"request_id,omitempty"`
	Model      string `json:"model"`
	// Lanes is the batch width of one bitsliced step.
	Lanes int `json:"lanes"`
	// Provenance is the engine serving this stream: "bitslice", or
	// "interp" for models outside the bitslice fragment.
	Provenance string `json:"provenance"`
}

// StreamResult is one per-input response line. Items that fail to
// decode or evaluate carry the error in their slot; the stream
// continues.
type StreamResult struct {
	// Index is the zero-based position of the input in the stream.
	Index int64 `json:"index"`
	// ID echoes the item's client id, when it sent one.
	ID     string     `json:"id,omitempty"`
	Status string     `json:"verdict"` // "ok" or "error"
	Value  any        `json:"value,omitempty"`
	Err    *ErrorInfo `json:"error,omitempty"`
}

// StreamTrailer is the last response line.
type StreamTrailer struct {
	Done bool `json:"done"`
	// Items counts input lines consumed; Errors counts the subset that
	// failed (in-slot); Batches counts engine calls.
	Items   int64 `json:"items"`
	Errors  int64 `json:"errors"`
	Batches int64 `json:"batches"`
	// Provenance repeats the stream engine from StreamStart.
	Provenance string  `json:"provenance"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// Err is set when the stream terminated early (deadline, client
	// disconnect, drain); consumed inputs still got their result lines.
	Err *ErrorInfo `json:"error,omitempty"`
}

func (s *Server) handleEvaluateStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, id := requestID(w, r)
	fail := func(status int, code, format string, args ...any) {
		s.errors.Add(1)
		res := failResponse(status, code, format, args...)
		res.RequestID = id
		writeJSON(w, res.HTTPStatus(), res)
	}
	if s.draining.Load() {
		fail(http.StatusServiceUnavailable, ErrDraining, "server is shutting down")
		return
	}

	in := bufio.NewScanner(r.Body)
	in.Buffer(make([]byte, 64<<10), maxStreamLine)
	if !in.Scan() {
		fail(http.StatusBadRequest, ErrStreamHeader, "empty stream: want a header line")
		return
	}
	var hdr StreamHeader
	if err := json.Unmarshal(in.Bytes(), &hdr); err != nil {
		fail(http.StatusBadRequest, ErrStreamHeader, "bad header line: %v", err)
		return
	}
	var q zen.Queryable
	if entry, ok := s.models[hdr.Model]; ok {
		if q = entry.queryable(); q == nil {
			fail(http.StatusBadRequest, ErrNotQueryable, "model %q is not queryable", hdr.Model)
			return
		}
	} else if inst := s.instance(hdr.Model); inst != nil {
		q, _ = inst.view()
	} else {
		fail(http.StatusNotFound, ErrUnknownModel, "unknown model %q", hdr.Model)
		return
	}

	d := time.Duration(hdr.TimeoutMS) * time.Millisecond
	if d == 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d == 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	var cancelFn context.CancelFunc = func() {}
	if d > 0 {
		ctx, cancelFn = context.WithTimeout(ctx, d)
	}
	defer cancelFn()

	s.streams.Add(1)
	start := time.Now()
	prov := ProvInterp
	if zen.BatchCompiles(q) {
		prov = ProvBitslice
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(&StreamStart{
		APIVersion: APIVersion,
		RequestID:  id,
		Model:      hdr.Model,
		Lanes:      streamChunk,
		Provenance: prov,
	})
	flush()

	args := q.QueryArgs()
	trailer := &StreamTrailer{Done: true, Provenance: prov}
	abort := func(code, msg string) {
		trailer.Err = &ErrorInfo{Code: code, Message: msg}
	}
	var index int64
	for trailer.Err == nil {
		chunk := s.readChunk(in, args, &index)
		if len(chunk) == 0 {
			if err := in.Err(); err != nil {
				abort(ErrStreamItem, "reading stream: "+err.Error())
			}
			break
		}
		trailer.Items += int64(len(chunk))
		// On failure every consumed item still answers — evalChunk stamps
		// in-slot errors and arms the trailer via abort.
		s.evalChunk(ctx, q, chunk, abort)
		trailer.Batches++
		for _, it := range chunk {
			if it.res.Err != nil {
				trailer.Errors++
				s.streamErrors.Add(1)
			}
			_ = enc.Encode(it.res)
		}
		s.streamItems.Add(int64(len(chunk)))
		flush()
	}
	trailer.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	_ = enc.Encode(trailer)
	flush()
}

// streamSlot is one consumed input: its decoded environment (nil when
// decoding failed) and the result line under construction.
type streamSlot struct {
	env zen.RawModel
	res *StreamResult
}

// readChunk consumes up to streamChunk input lines, decoding each
// against the model's argument types. Malformed lines produce an
// in-slot error result and no environment.
func (s *Server) readChunk(in *bufio.Scanner, args []*core.Node, index *int64) []*streamSlot {
	var chunk []*streamSlot
	for len(chunk) < streamChunk && in.Scan() {
		line := in.Bytes()
		if len(trimSpace(line)) == 0 {
			continue // ignore blank lines between items
		}
		slot := &streamSlot{res: &StreamResult{Index: *index}}
		*index++
		var item StreamItem
		if err := json.Unmarshal(line, &item); err != nil {
			slot.res.Status = "error"
			slot.res.Err = &ErrorInfo{Code: ErrStreamItem, Message: "bad item line: " + err.Error()}
		} else {
			slot.res.ID = item.ID
			env, err := decodeArgs(args, item.Args)
			if err != nil {
				slot.res.Status = "error"
				slot.res.Err = &ErrorInfo{Code: ErrBadArgs, Message: err.Error()}
			} else {
				slot.env = env
			}
		}
		chunk = append(chunk, slot)
	}
	return chunk
}

// evalChunk runs one chunk's decodable items through the batch engine on
// the worker pool, filling each slot's result. When the chunk cannot run
// (cancellation or drain) it stamps in-slot errors on every live item
// and terminates the stream via abort.
func (s *Server) evalChunk(ctx context.Context, q zen.Queryable, chunk []*streamSlot, abort func(code, msg string)) {
	envs := make([]zen.RawModel, 0, len(chunk))
	live := make([]*streamSlot, 0, len(chunk))
	for _, slot := range chunk {
		if slot.env != nil {
			envs = append(envs, slot.env)
			live = append(live, slot)
		}
	}
	if len(envs) == 0 {
		return
	}
	type outcome struct {
		vs  []*interp.Value
		err error
	}
	done := make(chan outcome, 1)
	if !s.submitWait(ctx, func() {
		vs, err := zen.EvaluateBatchRaw(ctx, q, envs)
		done <- outcome{vs, err}
	}) {
		code, msg := ErrDraining, "server is shutting down"
		if ctx.Err() != nil {
			code, msg = ErrCancelled, ctx.Err().Error()
		}
		for _, slot := range live {
			slot.res.Status = "error"
			slot.res.Err = &ErrorInfo{Code: code, Message: msg}
		}
		abort(code, msg)
		return
	}
	var out outcome
	select {
	case out = <-done:
	case <-ctx.Done():
		// The worker still observes ctx and exits; nobody blocks on the
		// buffered channel.
		out = outcome{err: ctx.Err()}
	}
	if out.err != nil {
		code := ErrInternal
		if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
			code = ErrCancelled
		}
		for _, slot := range live {
			slot.res.Status = "error"
			slot.res.Err = &ErrorInfo{Code: code, Message: out.err.Error()}
		}
		if code == ErrCancelled {
			abort(code, out.err.Error())
		}
		return
	}
	for i, slot := range live {
		slot.res.Status = "ok"
		slot.res.Value = encodeValue(out.vs[i])
	}
}

// submitWait submits f to the worker pool, blocking while the queue is
// full instead of shedding — mid-stream the right overload behavior is
// backpressure, not a 429. It gives up when the context ends or the
// server drains.
func (s *Server) submitWait(ctx context.Context, f func()) bool {
	for {
		if s.pool.submit(f) {
			return true
		}
		if s.draining.Load() || ctx.Err() != nil {
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	return b
}
