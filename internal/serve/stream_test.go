package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// streamPost drives POST /v1/evaluate through the full handler and
// splits the NDJSON response into start, results, and trailer.
func streamPost(t *testing.T, s *Server, body string) (int, *StreamStart, []*StreamResult, *StreamTrailer) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/evaluate", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != 200 {
		return w.Code, nil, nil, nil
	}
	lines := strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want at least start + trailer:\n%s", len(lines), w.Body.String())
	}
	var start StreamStart
	if err := json.Unmarshal([]byte(lines[0]), &start); err != nil {
		t.Fatalf("bad start line %q: %v", lines[0], err)
	}
	var trailer StreamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("bad trailer line %q: %v", lines[len(lines)-1], err)
	}
	var results []*StreamResult
	for _, line := range lines[1 : len(lines)-1] {
		var res StreamResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("bad result line %q: %v", line, err)
		}
		results = append(results, &res)
	}
	return w.Code, &start, results, &trailer
}

// TestEvaluateStream pushes enough inputs through /v1/evaluate to span
// several bitsliced batches (including a partial final one) and checks
// every result against the scalar model.
func TestEvaluateStream(t *testing.T) {
	s := newTestServer(t, Config{})
	const n = 150 // 3 batches of 64, 64, 22
	var b strings.Builder
	b.WriteString(`{"model": "demo/add8"}` + "\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"id": "pkt-%d", "args": [%d]}`+"\n", i, i%256)
	}
	code, start, results, trailer := streamPost(t, s, b.String())
	if code != 200 {
		t.Fatalf("status = %d, want 200", code)
	}
	if start.APIVersion != APIVersion || start.Model != "demo/add8" || start.Lanes != streamChunk {
		t.Fatalf("start envelope = %+v", start)
	}
	if start.Provenance != ProvBitslice {
		t.Fatalf("provenance = %q, want %q (demo/add8 is list-free)", start.Provenance, ProvBitslice)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Index != int64(i) || res.ID != fmt.Sprintf("pkt-%d", i) {
			t.Fatalf("result %d out of order: %+v", i, res)
		}
		want := float64((i%256 + 1) % 256)
		if res.Status != "ok" || res.Value.(float64) != want {
			t.Fatalf("result %d = %q %v, want ok %v", i, res.Status, res.Value, want)
		}
	}
	if !trailer.Done || trailer.Items != n || trailer.Errors != 0 || trailer.Err != nil {
		t.Fatalf("trailer = %+v", trailer)
	}
	if want := int64((n + streamChunk - 1) / streamChunk); trailer.Batches != want {
		t.Fatalf("trailer batches = %d, want %d", trailer.Batches, want)
	}

	st := s.Stats()
	if st.Streams != 1 || st.StreamItems != n || st.StreamErrors != 0 {
		t.Fatalf("stats = streams %d items %d errors %d", st.Streams, st.StreamItems, st.StreamErrors)
	}
	var m strings.Builder
	if err := s.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"zen_serve_stream_items_total", "zen_serve_streams_total", "zen_bitslice_packets_total"} {
		if !strings.Contains(m.String(), fam) {
			t.Errorf("metrics output lacks %s", fam)
		}
	}
}

// TestEvaluateStreamItemErrors: malformed lines and type mismatches fail
// in their slot while the rest of the stream answers normally.
func TestEvaluateStreamItemErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"model": "demo/add8"}
{"args": [1]}
this is not json
{"args": [true]}
{"args": [2]}
`
	code, _, results, trailer := streamPost(t, s, body)
	if code != 200 {
		t.Fatalf("status = %d, want 200", code)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	if results[0].Status != "ok" || results[0].Value.(float64) != 2 {
		t.Fatalf("result 0 = %+v", results[0])
	}
	if results[1].Status != "error" || results[1].Err == nil || results[1].Err.Code != ErrStreamItem {
		t.Fatalf("result 1 = %+v", results[1])
	}
	if results[2].Status != "error" || results[2].Err == nil || results[2].Err.Code != ErrBadArgs {
		t.Fatalf("result 2 = %+v", results[2])
	}
	if results[3].Status != "ok" || results[3].Value.(float64) != 3 {
		t.Fatalf("result 3 = %+v", results[3])
	}
	if trailer.Errors != 2 || trailer.Items != 4 || trailer.Err != nil {
		t.Fatalf("trailer = %+v", trailer)
	}
}

func TestEvaluateStreamBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	if code, _, _, _ := streamPost(t, s, ""); code != 400 {
		t.Errorf("empty stream: status = %d, want 400", code)
	}
	if code, _, _, _ := streamPost(t, s, "not json\n"); code != 400 {
		t.Errorf("bad header: status = %d, want 400", code)
	}
	if code, _, _, _ := streamPost(t, s, `{"model": "nope"}`+"\n"); code != 404 {
		t.Errorf("unknown model: status = %d, want 404", code)
	}
}

// TestEvaluateStreamMatchesQuery: the streaming path and the classic
// evaluate query must answer identically for the same inputs.
func TestEvaluateStreamMatchesQuery(t *testing.T) {
	s := newTestServer(t, Config{})
	var b strings.Builder
	b.WriteString(`{"model": "demo/square32"}` + "\n")
	inputs := []uint64{0, 1, 7, 1000, 65535, 4294967295}
	for _, v := range inputs {
		fmt.Fprintf(&b, `{"args": [%d]}`+"\n", v)
	}
	code, _, results, _ := streamPost(t, s, b.String())
	if code != 200 {
		t.Fatalf("status = %d, want 200", code)
	}
	for i, v := range inputs {
		req := &Request{Model: "demo/square32", Kind: "evaluate",
			Args: []json.RawMessage{json.RawMessage(fmt.Sprint(v))}}
		want := s.Do(context.Background(), req)
		if want.Status != "ok" {
			t.Fatalf("query evaluate failed: %+v", want)
		}
		if results[i].Status != "ok" || results[i].Value.(float64) != float64(want.Value.(uint64)) {
			t.Fatalf("input %d: stream %v, query %v", v, results[i].Value, want.Value)
		}
	}
}

// TestEvaluateStreamEmptyBody: a header with no items is a valid,
// empty stream.
func TestEvaluateStreamEmpty(t *testing.T) {
	s := newTestServer(t, Config{})
	code, start, results, trailer := streamPost(t, s, `{"model": "demo/add8"}`+"\n")
	if code != 200 || len(results) != 0 || !trailer.Done || trailer.Items != 0 {
		t.Fatalf("code %d start %+v results %d trailer %+v", code, start, len(results), trailer)
	}
}
