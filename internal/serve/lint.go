package serve

import (
	"net/http"

	"zen-go/internal/lint"
)

// LintResponse is the GET /v1/lint envelope. Findings use the same
// symbol-addressed schema `zenlint -json` emits, so one consumer works
// against either the offline tool or the running service.
type LintResponse struct {
	APIVersion string         `json:"api_version"`
	RequestID  string         `json:"request_id,omitempty"`
	Findings   []lint.Finding `json:"findings"`
	Err        *ErrorInfo     `json:"error,omitempty"`
}

// LintModels lints registry models, all of them when name is "". The
// per-model allow-list is applied; suppressed findings are included
// (marked) only when withSuppressed is set.
func (s *Server) LintModels(name string, withSuppressed bool) (*LintResponse, int) {
	res := &LintResponse{APIVersion: APIVersion, Findings: []lint.Finding{}}
	names := s.names
	if name != "" {
		if _, ok := s.models[name]; !ok {
			res.Err = &ErrorInfo{Code: ErrUnknownModel, Message: "unknown model " + name}
			return res, http.StatusNotFound
		}
		names = []string{name}
	}
	for _, n := range names {
		entry := s.models[n]
		diags := entry.built().Lint()
		kept, suppressed := lint.Filter(diags, entry.allow)
		for _, d := range kept {
			res.Findings = append(res.Findings, lint.ToFinding(n, entry.file, entry.line, d, false))
		}
		if withSuppressed {
			for _, d := range suppressed {
				res.Findings = append(res.Findings, lint.ToFinding(n, entry.file, entry.line, d, true))
			}
		}
	}
	return res, http.StatusOK
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	_, id := requestID(w, r)
	res, status := s.LintModels(r.URL.Query().Get("model"), r.URL.Query().Get("suppressed") == "1")
	res.RequestID = id
	writeJSON(w, status, res)
}
