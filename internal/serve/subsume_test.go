package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

func reqOf(kind, pred string) *Request {
	return &Request{Model: "demo/add8", Kind: kind, Predicate: json.RawMessage(pred)}
}

// TestSubsumptionUnsatTransfer: a cached UNSAT for P answers any Q with
// Q ⇒ P without executing a solver.
func TestSubsumptionUnsatTransfer(t *testing.T) {
	s := newTestServer(t, Config{})
	var execs atomic.Int64
	s.onExec = func(queryKey) { execs.Add(1) }
	ctx := context.Background()

	// P: out == 5 && out == 9 — unsat.
	p := `{"all":[{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}},{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":9}}}]}`
	if res := s.Do(ctx, reqOf("find", p)); res.Status != "unsat" || res.Provenance != ProvCold {
		t.Fatalf("P: %q/%q", res.Status, res.Provenance)
	}
	// Q strengthens P with in == 1, so Q ⇒ P: transferred unsat.
	q := `{"all":[{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}},{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":9}}},{"cmp":{"lhs":{"ref":"in"},"op":"eq","rhs":{"lit":1}}}]}`
	res := s.Do(ctx, reqOf("find", q))
	if res.Status != "unsat" || res.Provenance != ProvSubsumed {
		t.Fatalf("Q: %q/%q, want subsumed unsat", res.Status, res.Provenance)
	}
	if execs.Load() != 1 {
		t.Fatalf("executions = %d, want 1 (Q answered by implication)", execs.Load())
	}
	// A verify whose counterexample search is also implied comes back
	// valid through the same entry.
	v := `{"any":[{"not":{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}}},{"not":{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":9}}}}]}`
	res = s.Do(ctx, reqOf("verify", v))
	if res.Status != "valid" || res.Provenance != ProvSubsumed {
		t.Fatalf("verify: %q/%q, want subsumed valid", res.Status, res.Provenance)
	}
	if execs.Load() != 1 {
		t.Fatalf("executions = %d after verify, want 1", execs.Load())
	}
	// The transferred answer is in the LRU now: a repeat is a plain hit.
	if res := s.Do(ctx, reqOf("find", q)); !res.Cached() {
		t.Fatalf("repeat of subsumed Q: %q, want cached", res.Provenance)
	}
	if st := s.Stats(); st.Subsumed != 2 {
		t.Fatalf("subsumed counter = %d, want 2", st.Subsumed)
	}
}

// TestSubsumptionWitnessTransfer: a cached witness for P satisfies any
// Q with P ⇒ Q, so the sat verdict transfers witness and all.
func TestSubsumptionWitnessTransfer(t *testing.T) {
	s := newTestServer(t, Config{})
	var execs atomic.Int64
	s.onExec = func(queryKey) { execs.Add(1) }
	ctx := context.Background()

	// P: out == 5 && in == 4 — sat with the unique witness in = 4.
	p := `{"all":[{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}},{"cmp":{"lhs":{"ref":"in"},"op":"eq","rhs":{"lit":4}}}]}`
	if res := s.Do(ctx, reqOf("find", p)); res.Status != "sat" {
		t.Fatalf("P: %q (%s)", res.Status, res.ErrText())
	}
	// Q: out == 5 — weaker than P, so P's witness satisfies it.
	res := s.Do(ctx, reqOf("find", `{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}}`))
	if res.Status != "sat" || res.Provenance != ProvSubsumed {
		t.Fatalf("Q: %q/%q, want subsumed sat", res.Status, res.Provenance)
	}
	if fmt.Sprint(res.Model["in"]) != "4" {
		t.Fatalf("Q witness = %v, want the transferred in=4", res.Model)
	}
	if execs.Load() != 1 {
		t.Fatalf("executions = %d, want 1", execs.Load())
	}
}

// TestSubsumptionUnsatBeforeSat: with both entry lists populated, the
// definite-emptiness proof is consulted first — a query implied by an
// UNSAT entry comes back unsat even though SAT entries exist.
func TestSubsumptionUnsatBeforeSat(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	// One sat entry (out == 5, witness in = 4) ...
	if res := s.Do(ctx, reqOf("find", `{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}}`)); res.Status != "sat" {
		t.Fatalf("sat seed: %q", res.Status)
	}
	// ... and one unsat entry (out == 7 && out == 8).
	p := `{"all":[{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":7}}},{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":8}}}]}`
	if res := s.Do(ctx, reqOf("find", p)); res.Status != "unsat" {
		t.Fatalf("unsat seed: %q", res.Status)
	}
	// Q ⇒ the unsat entry and is not implied by the sat one: unsat.
	q := `{"all":[{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":7}}},{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":8}}},{"cmp":{"lhs":{"ref":"in"},"op":"ne","rhs":{"lit":3}}}]}`
	res := s.Do(ctx, reqOf("find", q))
	if res.Status != "unsat" || res.Provenance != ProvSubsumed {
		t.Fatalf("Q: %q/%q, want subsumed unsat", res.Status, res.Provenance)
	}
}

// TestSubsumptionDisabledWithCache: CacheSize <= 0 turns the whole cache
// stack off, including the subsumption index — the cold benchmark
// sentinel depends on this.
func TestSubsumptionDisabledWithCache(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: -1})
	var execs atomic.Int64
	s.onExec = func(queryKey) { execs.Add(1) }
	ctx := context.Background()
	p := `{"all":[{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}},{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":9}}}]}`
	for i := 0; i < 2; i++ {
		if res := s.Do(ctx, reqOf("find", p)); res.Status != "unsat" || res.Provenance != ProvCold {
			t.Fatalf("run %d: %q/%q, want cold unsat", i, res.Status, res.Provenance)
		}
	}
	if execs.Load() != 2 {
		t.Fatalf("executions = %d, want 2 (no caching of any kind)", execs.Load())
	}
}

// TestFingerprintAlphaEquivalence: the structural fingerprint must be
// stable across model rebuilds (fresh variable ids) and distinct for
// distinct predicates — snapshot correctness rides on both.
func TestFingerprintAlphaEquivalence(t *testing.T) {
	rules := []json.RawMessage{[]byte(`{"Permit": true, "DstLow": 80, "DstHigh": 80}`)}
	parsed, err := parseACLRules(rules)
	if err != nil {
		t.Fatal(err)
	}
	// Two builds of the same model allocate fresh argument variables.
	m1, m2 := buildACLModel(parsed), buildACLModel(parsed)
	if m1.QueryArgs()[0] == m2.QueryArgs()[0] {
		t.Fatalf("test premise broken: rebuilds share argument nodes")
	}
	pred := json.RawMessage(`{"all":[{"ref":"out"},{"cmp":{"lhs":{"ref":"in.DstPort"},"op":"eq","rhs":{"lit":80}}}]}`)
	c1, err := compilePredicate(pred, &resolver{args: m1.QueryArgs(), out: m1.QueryOut()})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compilePredicate(pred, &resolver{args: m2.QueryArgs(), out: m2.QueryOut()})
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatalf("test premise broken: different builds share the DAG node")
	}
	if fingerprint(c1) != fingerprint(c2) {
		t.Fatalf("alpha-equivalent DAGs fingerprint differently: %s vs %s", fingerprint(c1), fingerprint(c2))
	}
	// A genuinely different predicate must not collide.
	other := json.RawMessage(`{"all":[{"ref":"out"},{"cmp":{"lhs":{"ref":"in.DstPort"},"op":"eq","rhs":{"lit":81}}}]}`)
	c3, err := compilePredicate(other, &resolver{args: m1.QueryArgs(), out: m1.QueryOut()})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(c3) == fingerprint(c1) {
		t.Fatalf("distinct predicates collide on %s", fingerprint(c1))
	}
}

// TestSnapshotRestart is the persistence acceptance criterion: a
// restarted server answers previously-cached queries from the persisted
// snapshot, and previously-proven implications through the restored
// subsumption index — in both cases without a cold solve.
func TestSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1 := New(Config{SnapshotDir: dir})
	satP := `{"all":[{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}},{"cmp":{"lhs":{"ref":"in"},"op":"eq","rhs":{"lit":4}}}]}`
	unsatP := `{"all":[{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}},{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":9}}}]}`
	validP := `{"cmp":{"lhs":{"ref":"out"},"op":"ne","rhs":{"ref":"in"}}}`
	if res := s1.Do(ctx, reqOf("find", satP)); res.Status != "sat" {
		t.Fatalf("seed sat: %q (%s)", res.Status, res.ErrText())
	}
	if res := s1.Do(ctx, reqOf("find", unsatP)); res.Status != "unsat" {
		t.Fatalf("seed unsat: %q", res.Status)
	}
	if res := s1.Do(ctx, reqOf("verify", validP)); res.Status != "valid" {
		t.Fatalf("seed verify: %q", res.Status)
	}
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// A fresh process over the same snapshot dir: same registry, new
	// caches. Every re-asked query must come back without executing.
	s2 := newTestServer(t, Config{SnapshotDir: dir})
	var execs atomic.Int64
	s2.onExec = func(queryKey) { execs.Add(1) }
	for _, tc := range []struct {
		kind, pred, want string
	}{
		{"find", satP, "sat"},
		{"find", unsatP, "unsat"},
		{"verify", validP, "valid"},
	} {
		res := s2.Do(ctx, reqOf(tc.kind, tc.pred))
		if res.Status != tc.want || res.Provenance != ProvCached || !res.FromSnapshot {
			t.Fatalf("%s after restart: %q/%q from_snapshot=%v, want snapshot hit",
				tc.kind, res.Status, res.Provenance, res.FromSnapshot)
		}
	}
	if execs.Load() != 0 {
		t.Fatalf("restart executed %d solves, want 0", execs.Load())
	}
	if st := s2.Stats(); st.SnapshotHits != 3 {
		t.Fatalf("snapshot hits = %d, want 3", st.SnapshotHits)
	}
	// The witness survived the round trip.
	if res := s2.Do(ctx, reqOf("find", satP)); fmt.Sprint(res.Model["in"]) != "4" {
		t.Fatalf("restored witness = %v", res.Model)
	}

	// The subsumption index survived too: a NEW query implied by the
	// persisted unsat entry is answered by implication, not a solve.
	q := `{"all":[{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}},{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":9}}},{"cmp":{"lhs":{"ref":"in"},"op":"eq","rhs":{"lit":2}}}]}`
	res := s2.Do(ctx, reqOf("find", q))
	if res.Status != "unsat" || res.Provenance != ProvSubsumed {
		t.Fatalf("implied query after restart: %q/%q, want subsumed unsat", res.Status, res.Provenance)
	}
	if execs.Load() != 0 {
		t.Fatalf("implied query executed a solver")
	}
	// Genuinely new work still solves cold — the snapshot must not
	// invent answers.
	if res := s2.Do(ctx, findEq("demo/add8", 123)); res.Status != "sat" || res.Provenance != ProvCold {
		t.Fatalf("new query: %q/%q, want a cold sat", res.Status, res.Provenance)
	}
	if execs.Load() != 1 {
		t.Fatalf("executions = %d, want exactly the new query's", execs.Load())
	}
}

// TestSnapshotStaleModelDiscarded: a snapshot written for a different
// model semantics (here: a forged model fingerprint) is ignored.
func TestSnapshotStaleModelDiscarded(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1 := New(Config{SnapshotDir: dir})
	if res := s1.Do(ctx, findEq("demo/add8", 5)); res.Status != "sat" {
		t.Fatalf("seed: %q", res.Status)
	}
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}

	// Corrupt the model fingerprint, as if the binary's model changed.
	path := snapshotPath(dir, "demo/add8")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f snapshotFile
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	f.ModelFP = "0000000000000000"
	forged, _ := json.Marshal(&f)
	if err := os.WriteFile(path, forged, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Config{SnapshotDir: dir})
	var execs atomic.Int64
	s2.onExec = func(queryKey) { execs.Add(1) }
	res := s2.Do(ctx, findEq("demo/add8", 5))
	if res.Status != "sat" || res.FromSnapshot || execs.Load() != 1 {
		t.Fatalf("stale snapshot consulted: %+v execs=%d", res, execs.Load())
	}
}
