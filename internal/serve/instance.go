package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"zen-go/analyses/ap"
	"zen-go/analyses/veriflow"
	"zen-go/internal/core"
	"zen-go/internal/obs"
	"zen-go/nets/acl"
	"zen-go/nets/pkt"
	"zen-go/nets/routemap"
	"zen-go/zen"
)

// Mutable model instances: where the registry holds fixed models
// compiled into the binary, an instance is created over the API from a
// rule list and mutated in place by /v1/update deltas. The service
// keeps, per instance, the set of find/verify queries it has answered;
// an update re-verifies only the queries whose footprint intersects the
// part of the input space the delta actually changed, and re-stamps
// everything else from cache with "reused": true provenance.
//
// Two families exist:
//
//   - "acl" (rules are nets/acl.Rule): the input (pkt.Header) is
//     list-free, so the exact-set path applies. The change set is
//     computed with the veriflow kernel (the symmetric difference of
//     the old and new Allow functions, as a state set), each query's
//     rule-independent footprint rel(Q) = {h : Q(h,true) ≠ Q(h,false)}
//     is intersected against it, and dirty re-verification runs on
//     state sets — zero solver invocations either way. Affected
//     equivalence classes are counted with analyses/ap atoms over the
//     delta-touched rules' match sets.
//
//   - "routemap" (rules are nets/routemap.Clause): routes carry lists,
//     which state sets cannot represent, so the generic path applies:
//     a sat verdict whose cached witness still satisfies the new model
//     (one concrete interpreter pass) is reused; everything else
//     re-solves.

// maxTracked bounds the per-instance tracked-query list (FIFO).
const maxTracked = 128

// InstanceRequest creates a mutable model instance (POST /v1/instances).
type InstanceRequest struct {
	Name   string            `json:"name"`
	Family string            `json:"family"` // "acl" or "routemap"
	Rules  []json.RawMessage `json:"rules"`
}

// Delta is one rule edit. Op "insert" places Rule at Index (append when
// Index == current length), "delete" removes the rule at Index, and
// "modify" replaces it.
type Delta struct {
	Op    string          `json:"op"`
	Index int             `json:"index"`
	Rule  json.RawMessage `json:"rule,omitempty"`
}

// UpdateRequest applies deltas to an instance (POST /v1/update).
type UpdateRequest struct {
	Instance string  `json:"instance"`
	Deltas   []Delta `json:"deltas"`
}

// UpdateResponse is the envelope for instance creation and update. Its
// verdict is "created" or "updated"; Queries carries the tracked
// queries' post-update answers, each a standard Response with
// provenance "delta" and Reused marking the ones answered without
// re-verification.
type UpdateResponse struct {
	APIVersion string `json:"api_version"`
	RequestID  string `json:"request_id,omitempty"`
	Status     string `json:"verdict"`
	Instance   string `json:"instance,omitempty"`
	Family     string `json:"family,omitempty"`
	Generation uint64 `json:"generation"`
	Rules      int    `json:"rules"`
	// DirtyClasses counts the atomic-predicate equivalence classes the
	// update touched, out of TotalClasses over the delta'd rules
	// ("acl" family only; zero for families without the set path).
	DirtyClasses int         `json:"dirty_classes"`
	TotalClasses int         `json:"total_classes,omitempty"`
	Reused       int         `json:"reused"`
	Reverified   int         `json:"reverified"`
	Queries      []*Response `json:"queries,omitempty"`
	ElapsedMS    float64     `json:"elapsed_ms"`
	Err          *ErrorInfo  `json:"error,omitempty"`

	httpStatus int
}

// HTTPStatus returns the HTTP status the response should be served with.
func (r *UpdateResponse) HTTPStatus() int {
	if r.httpStatus != 0 {
		return r.httpStatus
	}
	return http.StatusOK
}

func failUpdate(httpStatus int, code, format string, args ...any) *UpdateResponse {
	return &UpdateResponse{
		APIVersion: APIVersion,
		Status:     "error",
		Err:        &ErrorInfo{Code: code, Message: fmt.Sprintf(format, args...)},
		httpStatus: httpStatus,
	}
}

// tracked is one find/verify query the instance has answered and keeps
// current across updates.
type tracked struct {
	raw     json.RawMessage // compacted predicate JSON
	kind    queryKind
	backend zen.Backend
	bound   int

	// Last answer.
	verdict string
	model   map[string]any // encoded witness (sat/invalid)
	witness zen.RawModel   // raw witness for concrete recheck
	solves  int64          // solver cost of the original answer

	// Exact-set footprint ("acl" family; setOK false on the generic
	// path). qTrue/qFalse compile the predicate with the model output
	// pinned to true/false — both rule-independent, so they survive
	// every update — and rel is their symmetric difference: the inputs
	// where the query's truth depends on the model at all.
	setOK         bool
	qTrue, qFalse zen.StateSet[pkt.Header]
	rel           zen.StateSet[pkt.Header]
}

// instance is one mutable model.
type instance struct {
	name   string
	family string

	mu      sync.RWMutex
	gen     uint64
	model   zen.Queryable
	aclRule []acl.Rule        // "acl" family rule list
	rmRule  []routemap.Clause // "routemap" family rule list
	w       *zen.World        // state-set world ("acl" family)
	tracked []*tracked
}

// view returns the instance's current compiled model and generation.
func (in *instance) view() (zen.Queryable, uint64) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.model, in.gen
}

// instance resolves a named instance, nil when unknown.
func (s *Server) instance(name string) *instance {
	s.instMu.RLock()
	defer s.instMu.RUnlock()
	return s.instances[name]
}

// --- creation ---

func parseACLRules(raws []json.RawMessage) ([]acl.Rule, error) {
	out := make([]acl.Rule, len(raws))
	for i, raw := range raws {
		if err := decodeRule(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return out, nil
}

func parseRMClauses(raws []json.RawMessage) ([]routemap.Clause, error) {
	out := make([]routemap.Clause, len(raws))
	for i, raw := range raws {
		if err := decodeRule(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("clause %d: %w", i, err)
		}
	}
	return out, nil
}

// decodeRule strictly decodes one rule; unknown fields are errors so a
// typo'd match field fails loudly instead of silently widening a rule.
func decodeRule(raw json.RawMessage, into any) error {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

func buildACLModel(rules []acl.Rule) zen.Queryable {
	a := &acl.ACL{Rules: append([]acl.Rule(nil), rules...)}
	return zen.Func(func(h zen.Value[pkt.Header]) zen.Value[bool] {
		return a.Allow(h)
	})
}

func buildRMModel(clauses []routemap.Clause) zen.Queryable {
	rm := &routemap.RouteMap{Clauses: append([]routemap.Clause(nil), clauses...)}
	return zen.Func(func(r zen.Value[routemap.Route]) zen.Value[zen.Opt[routemap.Route]] {
		return rm.Apply(r)
	})
}

// CreateInstance registers a new mutable instance. It is the direct
// entry point behind POST /v1/instances.
func (s *Server) CreateInstance(ctx context.Context, req *InstanceRequest) *UpdateResponse {
	start := time.Now()
	res := s.createInstance(req)
	res.APIVersion = APIVersion
	res.RequestID = RequestIDFrom(ctx)
	res.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return res
}

func (s *Server) createInstance(req *InstanceRequest) *UpdateResponse {
	if req.Name == "" {
		return failUpdate(http.StatusBadRequest, ErrBadRequest, "instance needs a name")
	}
	if _, taken := s.models[req.Name]; taken {
		return failUpdate(http.StatusConflict, ErrInstanceExists, "name %q is a registry model", req.Name)
	}
	in := &instance{name: req.Name, family: req.Family}
	switch req.Family {
	case "acl":
		rules, err := parseACLRules(req.Rules)
		if err != nil {
			return failUpdate(http.StatusBadRequest, ErrBadRule, "%v", err)
		}
		in.aclRule = rules
		in.model = buildACLModel(rules)
		in.w = zen.NewWorld()
	case "routemap":
		clauses, err := parseRMClauses(req.Rules)
		if err != nil {
			return failUpdate(http.StatusBadRequest, ErrBadRule, "%v", err)
		}
		in.rmRule = clauses
		in.model = buildRMModel(clauses)
	default:
		return failUpdate(http.StatusBadRequest, ErrUnknownFamily, "unknown family %q (want acl or routemap)", req.Family)
	}
	s.instMu.Lock()
	if _, taken := s.instances[req.Name]; taken {
		s.instMu.Unlock()
		return failUpdate(http.StatusConflict, ErrInstanceExists, "instance %q already exists", req.Name)
	}
	s.instances[req.Name] = in
	s.instMu.Unlock()
	return &UpdateResponse{
		Status:   "created",
		Instance: in.name,
		Family:   in.family,
		Rules:    len(req.Rules),
	}
}

// Instances lists the current instances (GET /v1/instances).
func (s *Server) Instances() []map[string]any {
	s.instMu.RLock()
	names := make([]string, 0, len(s.instances))
	for name := range s.instances {
		names = append(names, name)
	}
	s.instMu.RUnlock()
	sort.Strings(names)
	out := make([]map[string]any, 0, len(names))
	for _, name := range names {
		in := s.instance(name)
		if in == nil {
			continue
		}
		in.mu.RLock()
		out = append(out, map[string]any{
			"name":       in.name,
			"family":     in.family,
			"generation": in.gen,
			"rules":      in.ruleCountLocked(),
			"tracked":    len(in.tracked),
		})
		in.mu.RUnlock()
	}
	return out
}

func (in *instance) ruleCountLocked() int {
	if in.family == "acl" {
		return len(in.aclRule)
	}
	return len(in.rmRule)
}

// --- query tracking ---

// track records a completed cold find/verify against an instance so the
// next update can re-stamp or re-verify it. Called from the execution
// path; bounded FIFO.
func (in *instance) track(req *Request, q *query, res *Response) {
	switch res.Status {
	case "sat", "unsat", "valid", "invalid":
	default:
		return
	}
	if q.key.kind != kindFind && q.key.kind != kindVerify {
		return
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, req.Predicate); err != nil {
		return
	}
	raw := json.RawMessage(buf.Bytes())
	in.mu.Lock()
	defer in.mu.Unlock()
	if q.gen != in.gen {
		return // answered against a superseded generation
	}
	for _, t := range in.tracked {
		if t.kind == q.key.kind && t.backend == q.key.backend && t.bound == q.key.bound && string(t.raw) == string(raw) {
			return
		}
	}
	t := &tracked{
		raw:     raw,
		kind:    q.key.kind,
		backend: q.key.backend,
		bound:   q.key.bound,
		verdict: res.Status,
		model:   res.Model,
		solves:  res.SolveCount(),
	}
	t.witness = witnessEnv(q.args, res.Model)
	if in.family == "acl" {
		t.setOK = in.compileFootprint(t)
	}
	if len(in.tracked) >= maxTracked {
		in.tracked = in.tracked[1:]
	}
	in.tracked = append(in.tracked, t)
}

// compileFootprint builds the query's rule-independent sets. The
// predicate is compiled twice with the model output pinned to a
// constant; any reference to "in" binds to the set variable.
func (in *instance) compileFootprint(t *tracked) bool {
	b := zen.Builder()
	compile := func(out bool) (s zen.StateSet[pkt.Header], ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		s = zen.SetOf(in.w, func(h zen.Value[pkt.Header]) zen.Value[bool] {
			r := &resolver{args: []*core.Node{h.Raw()}, out: b.BoolConst(out)}
			cond, err := compilePredicate(t.raw, r)
			if err != nil {
				panic(err)
			}
			if t.kind == kindVerify {
				cond = b.Not(cond)
			}
			return zen.Wrap[bool](cond)
		})
		return s, true
	}
	var ok bool
	if t.qTrue, ok = compile(true); !ok {
		return false
	}
	if t.qFalse, ok = compile(false); !ok {
		return false
	}
	t.rel = t.qTrue.Minus(t.qFalse).Union(t.qFalse.Minus(t.qTrue))
	return true
}

// witnessEnv rebuilds the raw solver model from its encoded form, nil
// when there is no witness or it fails to round-trip.
func witnessEnv(args []*core.Node, model map[string]any) zen.RawModel {
	if model == nil {
		return nil
	}
	env := make(zen.RawModel, len(args))
	for i, a := range args {
		enc, ok := model[argName(i, len(args))]
		if !ok {
			return nil
		}
		raw, err := json.Marshal(enc)
		if err != nil {
			return nil
		}
		v, err := decodeValue(a.Type, raw)
		if err != nil {
			return nil
		}
		env[a.VarID] = v
	}
	return env
}

// --- update ---

// DoUpdate applies rule deltas to an instance, re-verifying only the
// tracked queries whose footprint the deltas touched. It is the direct
// entry point behind POST /v1/update.
func (s *Server) DoUpdate(ctx context.Context, req *UpdateRequest) *UpdateResponse {
	start := time.Now()
	res := s.doUpdate(ctx, req)
	res.APIVersion = APIVersion
	res.RequestID = RequestIDFrom(ctx)
	res.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return res
}

func (s *Server) doUpdate(ctx context.Context, req *UpdateRequest) *UpdateResponse {
	if s.draining.Load() {
		return failUpdate(http.StatusServiceUnavailable, ErrDraining, "server is shutting down")
	}
	in := s.instance(req.Instance)
	if in == nil {
		return failUpdate(http.StatusNotFound, ErrUnknownInstance, "unknown instance %q", req.Instance)
	}
	if len(req.Deltas) == 0 {
		return failUpdate(http.StatusBadRequest, ErrBadDelta, "update needs at least one delta")
	}
	in.mu.Lock()
	defer in.mu.Unlock()

	var res *UpdateResponse
	var err error
	if in.family == "acl" {
		res, err = s.updateACL(in, req.Deltas)
	} else {
		res, err = s.updateRM(ctx, in, req.Deltas)
	}
	if err != nil {
		return failUpdate(http.StatusBadRequest, ErrBadDelta, "%v", err)
	}
	s.updates.Add(1)
	s.deltaReuse.Add(int64(res.Reused))
	s.deltaRerun.Add(int64(res.Reverified))
	obs.Global().Merge(&obs.Snapshot{Serve: obs.ServeStats{
		Updates:         1,
		DeltaReused:     int64(res.Reused),
		DeltaReverified: int64(res.Reverified),
	}})
	// Old-generation subsumption worlds are now garbage; drop them all
	// (the new generation's world rebuilds on demand).
	s.subsume.invalidate(in.name)
	return res
}

// applyDeltas edits a rule list generically.
func applyDeltas[R any](rules []R, deltas []Delta, decode func(json.RawMessage, *R) error) ([]R, error) {
	out := append([]R(nil), rules...)
	for i, d := range deltas {
		switch d.Op {
		case "insert":
			if d.Index < 0 || d.Index > len(out) {
				return nil, fmt.Errorf("delta %d: insert index %d out of range [0,%d]", i, d.Index, len(out))
			}
			var r R
			if err := decode(d.Rule, &r); err != nil {
				return nil, fmt.Errorf("delta %d: %w", i, err)
			}
			out = append(out[:d.Index], append([]R{r}, out[d.Index:]...)...)
		case "delete":
			if d.Index < 0 || d.Index >= len(out) {
				return nil, fmt.Errorf("delta %d: delete index %d out of range [0,%d)", i, d.Index, len(out))
			}
			out = append(out[:d.Index], out[d.Index+1:]...)
		case "modify":
			if d.Index < 0 || d.Index >= len(out) {
				return nil, fmt.Errorf("delta %d: modify index %d out of range [0,%d)", i, d.Index, len(out))
			}
			var r R
			if err := decode(d.Rule, &r); err != nil {
				return nil, fmt.Errorf("delta %d: %w", i, err)
			}
			out[d.Index] = r
		default:
			return nil, fmt.Errorf("delta %d: unknown op %q (want insert/delete/modify)", i, d.Op)
		}
	}
	return out, nil
}

// touchedRules collects the rules a delta list references, old and new:
// the deleted/modified rules of the old list plus the inserted/modified
// rules of the new one. Their match sets are the predicates whose atoms
// partition the affected header space.
func touchedACLRules(old []acl.Rule, deltas []Delta) []acl.Rule {
	var out []acl.Rule
	for _, d := range deltas {
		if (d.Op == "delete" || d.Op == "modify") && d.Index >= 0 && d.Index < len(old) {
			out = append(out, old[d.Index])
		}
		if (d.Op == "insert" || d.Op == "modify") && len(d.Rule) > 0 {
			var r acl.Rule
			if decodeRule(d.Rule, &r) == nil {
				out = append(out, r)
			}
		}
	}
	return out
}

// updateACL is the exact-set delta path. Everything here is state-set
// algebra: no solver is invoked, for reused and re-verified queries
// alike. Caller holds in.mu.
func (s *Server) updateACL(in *instance, deltas []Delta) (*UpdateResponse, error) {
	newRules, err := applyDeltas(in.aclRule, deltas, func(raw json.RawMessage, r *acl.Rule) error { return decodeRule(raw, r) })
	if err != nil {
		return nil, err
	}
	oldACL := &acl.ACL{Rules: in.aclRule}
	newACL := &acl.ACL{Rules: newRules}
	// The exact change set: headers whose permit/deny decision differs.
	changed := veriflow.Changed(in.w, oldACL.Allow, newACL.Allow)

	// Dirty equivalence classes: atoms of the delta-touched rules'
	// match sets, counted against the change set.
	var dirty, total int
	if touched := touchedACLRules(in.aclRule, deltas); len(touched) > 0 {
		preds := make([]zen.StateSet[pkt.Header], len(touched))
		for i, r := range touched {
			rule := r
			preds[i] = zen.SetOf(in.w, func(h zen.Value[pkt.Header]) zen.Value[bool] {
				return rule.Matches(h)
			})
		}
		atoms := ap.Compute(in.w, preds)
		dirty, total = len(atoms.Touching(changed)), atoms.NumAtoms()
	}

	newModel := buildACLModel(newRules)
	newGen := in.gen + 1
	res := &UpdateResponse{
		Status:       "updated",
		Instance:     in.name,
		Family:       in.family,
		Generation:   newGen,
		Rules:        len(newRules),
		DirtyClasses: dirty,
		TotalClasses: total,
	}

	// The new permit set, computed once and shared by every re-verified
	// query (lazily: a delta touching no tracked footprint never pays).
	var allow zen.StateSet[pkt.Header]
	var haveAllow bool
	for _, t := range in.tracked {
		reused := t.setOK && t.rel.Intersect(changed).IsEmpty()
		if !reused && t.setOK {
			if !haveAllow {
				allow = zen.SetOf(in.w, func(h zen.Value[pkt.Header]) zen.Value[bool] {
					return newACL.Allow(h)
				})
				haveAllow = true
			}
			// Satisfying inputs of Q under the new rules:
			// (allow ∩ Q[out:=true]) ∪ (allowᶜ ∩ Q[out:=false]).
			sat := allow.Intersect(t.qTrue).Union(allow.Complement().Intersect(t.qFalse))
			t.verdict, t.model = setVerdict(t.kind, sat)
			t.witness = nil
			t.solves = 0
		} else if !reused && !t.setOK {
			// Footprint compilation failed at track time; the only
			// sound answer is a fresh solve on the new model.
			r := s.resolveTracked(context.Background(), newModel, t)
			applyResolved(t, r)
		}
		res.Queries = append(res.Queries, trackedResponse(in.name, t, reused))
		if reused {
			res.Reused++
		} else {
			res.Reverified++
		}
	}

	in.aclRule = newRules
	in.model = newModel
	in.gen = newGen
	s.primeCache(in, newModel, newGen, res.Queries)
	return res, nil
}

// updateRM is the generic delta path for list-typed models: reuse a
// sat verdict when its cached witness still satisfies the new model
// (one interpreter pass), re-solve everything else. Caller holds in.mu.
func (s *Server) updateRM(ctx context.Context, in *instance, deltas []Delta) (*UpdateResponse, error) {
	newClauses, err := applyDeltas(in.rmRule, deltas, func(raw json.RawMessage, c *routemap.Clause) error { return decodeRule(raw, c) })
	if err != nil {
		return nil, err
	}
	newModel := buildRMModel(newClauses)
	newGen := in.gen + 1
	res := &UpdateResponse{
		Status:     "updated",
		Instance:   in.name,
		Family:     in.family,
		Generation: newGen,
		Rules:      len(newClauses),
	}
	for _, t := range in.tracked {
		reused := false
		if t.witness != nil {
			if cond, err := compileTracked(newModel, t); err == nil {
				if v, everr := zen.EvaluateRaw(ctx, cond, rebind(newModel, t.witness)); everr == nil && v.Type.Kind == core.KindBool && v.B {
					// The old witness still satisfies the new model, so
					// the sat/invalid verdict carries over witness and all.
					reused = true
				}
			}
		}
		if !reused {
			r := s.resolveTracked(ctx, newModel, t)
			applyResolved(t, r)
		}
		res.Queries = append(res.Queries, trackedResponse(in.name, t, reused))
		if reused {
			res.Reused++
		} else {
			res.Reverified++
		}
	}
	in.rmRule = newClauses
	in.model = newModel
	in.gen = newGen
	s.primeCache(in, newModel, newGen, res.Queries)
	return res, nil
}

// rebind maps a witness recorded against one generation's argument
// variables onto another's: zen.Func allocates fresh variables per
// build, but both families are single-argument models, so the re-keying
// is positional.
func rebind(m zen.Queryable, witness zen.RawModel) zen.RawModel {
	args := m.QueryArgs()
	out := make(zen.RawModel, len(args))
	for _, v := range witness {
		for _, a := range args {
			out[a.VarID] = v
		}
	}
	return out
}

// compileTracked compiles a tracked query's predicate against a model
// build, applying the verify negation.
func compileTracked(m zen.Queryable, t *tracked) (*core.Node, error) {
	r := &resolver{args: m.QueryArgs(), out: m.QueryOut()}
	cond, err := compilePredicate(t.raw, r)
	if err != nil {
		return nil, err
	}
	if t.kind == kindVerify {
		cond = zen.Builder().Not(cond)
	}
	return cond, nil
}

// resolveTracked re-solves a tracked query against a model build.
type resolved struct {
	verdict string
	model   map[string]any
	witness zen.RawModel
	solves  int64
}

func (s *Server) resolveTracked(ctx context.Context, m zen.Queryable, t *tracked) resolved {
	cond, err := compileTracked(m, t)
	if err != nil {
		return resolved{verdict: "error"}
	}
	st := &zen.Stats{}
	opts := []zen.Option{zen.WithBackend(t.backend), zen.WithStats(st)}
	if t.bound > 0 {
		opts = append(opts, zen.WithListBound(t.bound))
	}
	args := m.QueryArgs()
	model, found, err := zen.FindRaw(ctx, cond, args, opts...)
	if err != nil {
		return resolved{verdict: "error"}
	}
	r := resolved{solves: st.Snapshot().Solves}
	if found {
		r.witness = model
		r.model = encodeModel(args, model)
		if t.kind == kindVerify {
			r.verdict = "invalid"
		} else {
			r.verdict = "sat"
		}
	} else if t.kind == kindVerify {
		r.verdict = "valid"
	} else {
		r.verdict = "unsat"
	}
	return r
}

func applyResolved(t *tracked, r resolved) {
	t.verdict, t.model, t.witness, t.solves = r.verdict, r.model, r.witness, r.solves
}

// setVerdict reads a verdict (and witness) off a satisfying-set.
func setVerdict(kind queryKind, sat zen.StateSet[pkt.Header]) (string, map[string]any) {
	if sat.IsEmpty() {
		if kind == kindVerify {
			return "valid", nil
		}
		return "unsat", nil
	}
	var model map[string]any
	if v, ok := sat.Internal().Element(); ok {
		model = map[string]any{"in": encodeValue(v)}
	}
	if kind == kindVerify {
		return "invalid", model
	}
	return "sat", model
}

// trackedResponse renders a tracked query's current answer as a
// standard envelope with delta provenance.
func trackedResponse(model string, t *tracked, reused bool) *Response {
	return &Response{
		APIVersion: APIVersion,
		Status:     t.verdict,
		Provenance: ProvDelta,
		Reused:     reused,
		Model:      t.model,
		Predicate:  t.raw,
		Counters:   &Counters{Solves: t.solves},
	}
}

// primeCache installs the post-update answers under the new generation,
// so follow-up /v1/query traffic for tracked predicates hits the LRU
// instead of re-solving. Caller holds in.mu with the new model set.
func (s *Server) primeCache(in *instance, m zen.Queryable, gen uint64, results []*Response) {
	for i, t := range in.tracked {
		if i >= len(results) || results[i].Status == "error" {
			continue
		}
		cond, err := compileTracked(m, t)
		if err != nil {
			continue
		}
		k := queryKey{
			model: in.name, kind: t.kind, backend: t.backend,
			cond: cond, max: 1, bound: t.bound, gen: gen,
		}
		res := results[i]
		res.fingerprint = fingerprint(cond)
		s.cache.put(k, res)
	}
}
