package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Request ids correlate a query across its surfaces: the X-Zen-Request-Id
// response header, the request_id field of the JSON response, the root
// span of an inline trace, and the slow-query log. The HTTP layer honors
// a client-sent header (so ids can span services) and generates one
// otherwise; Do reads it from the context.

type reqIDKey struct{}

// WithRequestID attaches a request id to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the context's request id, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

var reqIDFallback atomic.Int64

// NewRequestID returns a fresh 16-hex-char request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable, but ids must stay
		// unique within the process even then.
		return fmt.Sprintf("fallback-%d", reqIDFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}
