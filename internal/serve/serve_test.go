package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// findEq returns a find request for model with predicate out == v.
func findEq(model string, v uint64) *Request {
	return &Request{
		Model: model,
		Kind:  "find",
		Predicate: json.RawMessage(fmt.Sprintf(
			`{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":%d}}}`, v)),
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancelFn := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelFn()
		_ = s.Shutdown(ctx)
	})
	return s
}

func TestFindQueryRoundtrip(t *testing.T) {
	s := newTestServer(t, Config{})
	res := s.Do(context.Background(), findEq("demo/add8", 7))
	if res.Status != "sat" {
		t.Fatalf("status = %q (%s), want sat", res.Status, res.ErrText())
	}
	in, ok := res.Model["in"].(uint64)
	if !ok || in != 6 {
		t.Fatalf("witness = %v, want in=6", res.Model)
	}
	if res.SolveCount() == 0 {
		t.Fatalf("a cold find must report solver work")
	}
}

func TestEvaluateAndVerify(t *testing.T) {
	s := newTestServer(t, Config{})
	res := s.Do(context.Background(), &Request{
		Model: "demo/add8", Kind: "evaluate", Args: []json.RawMessage{json.RawMessage("41")},
	})
	if res.Status != "ok" || res.Value.(uint64) != 42 {
		t.Fatalf("evaluate = %q %v (%s), want ok 42", res.Status, res.Value, res.ErrText())
	}
	// out == in+1 can never be 0... except on wraparound: in=255. So
	// "out != 0" is invalid with counterexample in=255.
	res = s.Do(context.Background(), &Request{
		Model: "demo/add8", Kind: "verify",
		Predicate: json.RawMessage(`{"not":{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":0}}}}`),
	})
	if res.Status != "invalid" || res.Model["in"].(uint64) != 255 {
		t.Fatalf("verify = %q %v, want invalid with in=255", res.Status, res.Model)
	}
	res = s.Do(context.Background(), &Request{
		Model: "demo/add8", Kind: "verify",
		Predicate: json.RawMessage(`{"any":[{"cmp":{"lhs":{"ref":"out"},"op":"ne","rhs":{"ref":"in"}},{"extra":1}}]}`),
	})
	if res.Status != "error" || res.HTTPStatus() != http.StatusBadRequest {
		t.Fatalf("malformed predicate: status = %q http %d, want error 400", res.Status, res.HTTPStatus())
	}
}

// TestCachedRepeatIsFree is the acceptance criterion: a repeated
// identical query is served from the cache with zero new solver work.
func TestCachedRepeatIsFree(t *testing.T) {
	s := newTestServer(t, Config{})
	var execs atomic.Int64
	s.onExec = func(queryKey) { execs.Add(1) }

	cold := s.Do(context.Background(), findEq("demo/add8", 9))
	if cold.Status != "sat" || cold.Cached() {
		t.Fatalf("cold query: status %q cached %v", cold.Status, cold.Cached())
	}
	// The repeat arrives as different JSON spelling (whitespace, key
	// order) but compiles to the same DAG node, so it must hit.
	repeat := &Request{
		Model: "demo/add8", Kind: "find",
		Predicate: json.RawMessage(`{ "cmp": { "rhs": {"lit": 9}, "op": "eq", "lhs": {"ref": "out"} } }`),
	}
	warm := s.Do(context.Background(), repeat)
	if warm.Status != "sat" || !warm.Cached() {
		t.Fatalf("repeat query: status %q cached %v, want a cache hit", warm.Status, warm.Cached())
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("solver executions = %d, want 1 (repeat must do zero new solver work)", got)
	}
	if warm.Model["in"].(uint64) != cold.Model["in"].(uint64) {
		t.Fatalf("cached witness differs: %v vs %v", warm.Model, cold.Model)
	}
}

// TestDeadlineCancelsSolver is the acceptance criterion: a Find with a
// 50ms deadline on an expensive query returns within ~2x the deadline
// with cancelled status, and the solver actually stops (it does not pin
// a worker or leak a goroutine at 100% CPU).
func TestDeadlineCancelsSolver(t *testing.T) {
	// One worker: if the cancelled solve kept running, the follow-up
	// query below could never execute.
	s := newTestServer(t, Config{Workers: 1})
	before := runtime.NumGoroutine()

	const deadline = 50 * time.Millisecond
	start := time.Now()
	res := s.Do(context.Background(), &Request{
		Model: "demo/square32", Kind: "find", TimeoutMS: int(deadline / time.Millisecond),
		Predicate: json.RawMessage(`{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":3037000493}}}`),
	})
	elapsed := time.Since(start)
	if res.Status != "cancelled" {
		t.Fatalf("status = %q (%s) after %v, want cancelled", res.Status, res.ErrText(), elapsed)
	}
	if !strings.Contains(res.ErrText(), "deadline") {
		t.Fatalf("error = %q, want a deadline error", res.ErrText())
	}
	// Acceptance bar is ~2x; allow wide slack for loaded CI machines
	// while still catching an unbounded solve.
	if elapsed > 20*deadline {
		t.Fatalf("cancelled query returned after %v, deadline was %v", elapsed, deadline)
	}
	if s.cache.len() != 0 {
		t.Fatalf("cache has %d entries after only a cancelled query, want 0", s.cache.len())
	}

	// The sole worker must abandon the solve and pick up new work: a
	// cheap query after the cancellation has to complete.
	ctx, cancelFn := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelFn()
	if res := s.Do(ctx, findEq("demo/add8", 7)); res.Status != "sat" {
		t.Fatalf("query after cancellation: %q (%s) — the worker never freed up", res.Status, res.ErrText())
	}
	// And nothing may leak: goroutine count returns to the baseline.
	deadlineAt := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadlineAt) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines grew from %d to %d after a cancelled query", before, now)
	}
}

// TestSingleflightCoalesces: N concurrent identical queries cause one
// solver run.
func TestSingleflightCoalesces(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, Queue: 32, CacheSize: -1})
	var execs atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	s.onExec = func(queryKey) {
		execs.Add(1)
		once.Do(func() { close(started) })
		time.Sleep(50 * time.Millisecond) // hold the flight open so followers pile up
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([]*Response, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = s.Do(context.Background(), findEq("demo/add8", 3))
	}()
	<-started // the leader is executing; the rest must coalesce
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Do(context.Background(), findEq("demo/add8", 3))
		}(i)
	}
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("solver executions = %d for %d identical queries, want 1", got, n)
	}
	coalesced := 0
	for i, r := range results {
		if r.Status != "sat" {
			t.Fatalf("query %d: status %q (%s)", i, r.Status, r.ErrText())
		}
		if r.Coalesced() {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", coalesced, n-1)
	}
}

// TestSheddingUnderSaturation: with the pool saturated and the queue
// full, distinct queries are shed with 429.
func TestSheddingUnderSaturation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Queue: 1, CacheSize: -1})
	release := make(chan struct{})
	s.onExec = func(queryKey) { <-release }
	defer close(release)

	done := make(chan *Response, 2)
	// Occupy the single worker, then the single queue slot, with
	// distinct queries (identical ones would coalesce, not queue).
	for i := 0; i < 2; i++ {
		go func(i int) {
			done <- s.Do(context.Background(), findEq("demo/add8", uint64(100+i)))
		}(i)
	}
	// Wait until both are admitted (one running, one queued).
	for deadline := time.Now().Add(5 * time.Second); s.pool.queued() < 1; {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", s.pool.queued())
		}
		time.Sleep(time.Millisecond)
	}

	shedRes := s.Do(context.Background(), findEq("demo/add8", 200))
	if shedRes.Status != "shed" || shedRes.HTTPStatus() != http.StatusTooManyRequests {
		t.Fatalf("saturated query: status %q http %d, want shed 429", shedRes.Status, shedRes.HTTPStatus())
	}
	if s.Stats().Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", s.Stats().Shed)
	}
}

func TestLRUEvictionAndCollisionSafety(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 2})
	var execs atomic.Int64
	s.onExec = func(queryKey) { execs.Add(1) }

	// Three distinct predicates through a 2-entry cache: the first is
	// evicted, and re-running it must re-execute (no false hit), while
	// the still-resident third hits.
	for _, v := range []uint64{1, 2, 3} {
		if res := s.Do(context.Background(), findEq("demo/add8", v)); res.Status != "sat" {
			t.Fatalf("find %d: %q (%s)", v, res.Status, res.ErrText())
		}
	}
	if s.cache.len() != 2 {
		t.Fatalf("cache len = %d, want 2", s.cache.len())
	}
	res := s.Do(context.Background(), findEq("demo/add8", 3))
	if !res.Cached() || res.Model["in"].(uint64) != 2 {
		t.Fatalf("resident query: cached=%v model=%v, want hit with in=2", res.Cached(), res.Model)
	}
	// The evicted predicate is gone from the LRU, but the subsumption
	// index deliberately outlives eviction: the identical predicate is a
	// trivial implication, so the answer (witness included) transfers
	// without re-executing.
	res = s.Do(context.Background(), findEq("demo/add8", 1))
	if res.Cached() || res.Provenance != ProvSubsumed {
		t.Fatalf("evicted query: provenance %q, want subsumed", res.Provenance)
	}
	if res.Model["in"].(uint64) != 0 {
		t.Fatalf("subsumed query: model = %v, want in=0 witness transfer", res.Model)
	}
	if got := execs.Load(); got != 3 {
		t.Fatalf("executions = %d, want 3 (eviction answered by subsumption)", got)
	}

	// Collision safety across key dimensions: a different kind or model
	// must never share an LRU entry. findall never consults the
	// subsumption index either, so it must re-execute; a find on another
	// backend is answered by implication (satisfiability is
	// backend-independent) with explicit subsumed provenance.
	base := execs.Load()
	res = s.Do(context.Background(), &Request{Model: "demo/add8", Kind: "findall", Max: 3,
		Predicate: findEq("demo/add8", 3).Predicate})
	if res.Cached() || res.Provenance != ProvCold || res.Status != "sat" {
		t.Fatalf("findall variant: provenance %q status %q, want a cold sat", res.Provenance, res.Status)
	}
	res = s.Do(context.Background(), &Request{Model: "demo/add8", Kind: "find", Backend: "sat",
		Predicate: findEq("demo/add8", 3).Predicate})
	if res.Cached() || res.Provenance != ProvSubsumed || res.Status != "sat" {
		t.Fatalf("sat-backend variant: provenance %q status %q, want a subsumed sat", res.Provenance, res.Status)
	}
	if got := execs.Load() - base; got != 1 {
		t.Fatalf("variant executions = %d, want 1 (findall only)", got)
	}
}

func TestShutdownDrainsInflight(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.onExec = func(queryKey) { close(entered); <-release }

	resc := make(chan *Response, 1)
	go func() { resc <- s.Do(context.Background(), findEq("demo/add8", 50)) }()
	<-entered

	// Shutdown with an in-flight query: new queries are rejected at
	// once, and Shutdown blocks until the query finishes.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancelFn := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelFn()
		shutdownDone <- s.Shutdown(ctx)
	}()
	for deadline := time.Now().Add(5 * time.Second); !s.draining.Load(); {
		if time.Now().After(deadline) {
			t.Fatalf("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if res := s.Do(context.Background(), findEq("demo/add8", 51)); res.Status != "draining" || res.HTTPStatus() != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: %q http %d, want draining 503", res.Status, res.HTTPStatus())
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight query finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}
	res := <-resc
	if res.Status != "sat" {
		t.Fatalf("in-flight query during drain: %q (%s), want sat", res.Status, res.ErrText())
	}
}

func TestHTTPSurface(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/v1/models")
	if code != http.StatusOK || !strings.Contains(body, "demo/add8") {
		t.Fatalf("/v1/models: %d %s", code, body)
	}

	post := func(path, reqBody string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, qbody := post("/v1/query",
		`{"model":"demo/add8","kind":"find","predicate":{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}}}`)
	if code != http.StatusOK || !strings.Contains(qbody, `"verdict": "sat"`) {
		t.Fatalf("/v1/query: %d %s", code, qbody)
	}
	code, qbody = post("/v1/query", `{"model":"nope","kind":"find","predicate":{"ref":"out"}}`)
	if code != http.StatusNotFound {
		t.Fatalf("/v1/query unknown model: %d %s", code, qbody)
	}

	code, bbody := post("/v1/batch", `{"queries":[
		{"model":"demo/add8","kind":"evaluate","args":[1]},
		{"model":"demo/add8","kind":"find","predicate":{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}}}
	]}`)
	if code != http.StatusOK || !strings.Contains(bbody, `"provenance": "cached"`) {
		t.Fatalf("/v1/batch (second query should hit the cache): %d %s", code, bbody)
	}

	code, sbody := get("/v1/stats")
	if code != http.StatusOK || !strings.Contains(sbody, `"cache_hits": 1`) {
		t.Fatalf("/v1/stats: %d %s", code, sbody)
	}
	code, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	code, dbody := get("/debug/zenstats")
	if code != http.StatusOK || !strings.Contains(dbody, `"serve"`) {
		t.Fatalf("/debug/zenstats: %d", code)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, bad := range []string{"256", "-1", "1.5", `"x"`} {
		res := s.Do(context.Background(), &Request{
			Model: "demo/add8", Kind: "evaluate", Args: []json.RawMessage{json.RawMessage(bad)},
		})
		if res.Status != "error" || res.HTTPStatus() != http.StatusBadRequest {
			t.Fatalf("evaluate(%s): %q http %d, want error 400", bad, res.Status, res.HTTPStatus())
		}
	}
	res := s.Do(context.Background(), &Request{Model: "demo/add8", Kind: "find",
		Predicate: json.RawMessage(`{"cmp":{"lhs":{"ref":"out.nope"},"op":"eq","rhs":{"lit":1}}}`)})
	if res.Status != "error" || !strings.Contains(res.ErrText(), "not an object") {
		t.Fatalf("bad ref path: %q / %s", res.Status, res.ErrText())
	}
}

// TestPortfolioBackend routes a query kind of each shape through the
// portfolio backend and checks the verdicts match the default backend's.
func TestPortfolioBackend(t *testing.T) {
	s := newTestServer(t, Config{PortfolioWorkers: 2})

	res := s.Do(context.Background(), &Request{
		Model: "demo/add8", Kind: "find", Backend: "portfolio",
		Predicate: findEq("demo/add8", 7).Predicate,
	})
	if res.Status != "sat" || res.Model["in"].(uint64) != 6 {
		t.Fatalf("portfolio find = %q %v (%s), want sat in=6", res.Status, res.Model, res.ErrText())
	}

	res = s.Do(context.Background(), &Request{
		Model: "demo/add8", Kind: "findall", Backend: "portfolio", Max: 3,
		Predicate: json.RawMessage(`{"cmp":{"lhs":{"ref":"in"},"op":"lt","rhs":{"lit":5}}}`),
	})
	if res.Status != "sat" || len(res.Models) != 3 {
		t.Fatalf("portfolio findall = %q with %d models (%s), want sat with 3", res.Status, len(res.Models), res.ErrText())
	}
	seen := map[uint64]bool{}
	for _, m := range res.Models {
		v := m["in"].(uint64)
		if v >= 5 || seen[v] {
			t.Fatalf("findall models %v: out of range or repeated", res.Models)
		}
		seen[v] = true
	}

	res = s.Do(context.Background(), &Request{
		Model: "demo/add8", Kind: "verify", Backend: "portfolio",
		Predicate: json.RawMessage(`{"cmp":{"lhs":{"ref":"out"},"op":"ne","rhs":{"ref":"in"}}}`),
	})
	if res.Status != "valid" {
		t.Fatalf("portfolio verify = %q (%s), want valid (in+1 != in over uint8)", res.Status, res.ErrText())
	}

	res = s.Do(context.Background(), &Request{
		Model: "demo/add8", Kind: "find", Backend: "dpll",
		Predicate: findEq("demo/add8", 7).Predicate,
	})
	if res.Status != "error" || res.HTTPStatus() != http.StatusBadRequest {
		t.Fatalf("unknown backend: %q http %d, want error 400", res.Status, res.HTTPStatus())
	}
}

// TestPortfolioBackendCacheKey: portfolio and bdd answers for one
// predicate occupy distinct LRU entries — the portfolio request never
// reads the bdd entry as a plain cache hit. Its verdict does transfer
// through the subsumption index (satisfiability is backend-independent),
// with explicit provenance; the transferred answer then becomes the
// portfolio key's own LRU entry.
func TestPortfolioBackendCacheKey(t *testing.T) {
	s := newTestServer(t, Config{})
	var execs atomic.Int64
	s.onExec = func(queryKey) { execs.Add(1) }
	req := findEq("demo/add8", 11)
	if res := s.Do(context.Background(), req); res.Cached() {
		t.Fatalf("cold bdd query must not hit the cache")
	}
	preq := findEq("demo/add8", 11)
	preq.Backend = "portfolio"
	if res := s.Do(context.Background(), preq); res.Cached() || res.Provenance != ProvSubsumed {
		t.Fatalf("portfolio query: provenance %q, want subsumed (not a shared LRU entry)", res.Provenance)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (portfolio answered by implication)", got)
	}
	if res := s.Do(context.Background(), preq); !res.Cached() {
		t.Fatalf("repeated portfolio query must hit its own cache entry")
	}
}
