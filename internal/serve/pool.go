package serve

import "sync"

// workerPool bounds solver concurrency and memory: a fixed number of
// workers drain a bounded queue, and a submit against a full queue fails
// immediately so the caller can shed the request (429) instead of growing
// an unbounded backlog under overload.
type workerPool struct {
	mu       sync.RWMutex // held for read by submit, for write by drain
	tasks    chan func()
	wg       sync.WaitGroup
	draining bool
}

func newWorkerPool(workers, queue int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &workerPool{tasks: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// submit enqueues f, failing fast when the queue is full or the pool is
// draining.
func (p *workerPool) submit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining {
		return false
	}
	select {
	case p.tasks <- f:
		return true
	default:
		return false
	}
}

// queued reports the current queue depth (excluding running tasks).
func (p *workerPool) queued() int { return len(p.tasks) }

// drain stops intake and blocks until queued and running tasks finish.
// In-flight solver work is bounded by each query's own deadline, so the
// caller typically races drain against a drain deadline.
func (p *workerPool) drain() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
