package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// aclInstance creates a small permit-web ACL instance: dst port 80 and
// 443 allowed, implicit deny otherwise.
func aclInstance(t *testing.T, s *Server, name string) {
	t.Helper()
	res := s.CreateInstance(context.Background(), &InstanceRequest{
		Name:   name,
		Family: "acl",
		Rules: []json.RawMessage{
			[]byte(`{"Permit": true, "DstLow": 80, "DstHigh": 80}`),
			[]byte(`{"Permit": true, "DstLow": 443, "DstHigh": 443}`),
		},
	})
	if res.Status != "created" || res.Err != nil {
		t.Fatalf("create: %+v", res)
	}
}

// allowedOnPort asks: is some packet with this dst port allowed?
func allowedOnPort(inst string, port int) *Request {
	return &Request{
		Model: inst, Kind: "find",
		Predicate: json.RawMessage(fmt.Sprintf(
			`{"all":[{"ref":"out"},{"cmp":{"lhs":{"ref":"in.DstPort"},"op":"eq","rhs":{"lit":%d}}}]}`, port)),
	}
}

// deniedOnPort asserts: every packet with this dst port is denied.
func deniedOnPort(inst string, port int) *Request {
	return &Request{
		Model: inst, Kind: "verify",
		Predicate: json.RawMessage(fmt.Sprintf(
			`{"any":[{"cmp":{"lhs":{"ref":"in.DstPort"},"op":"ne","rhs":{"lit":%d}}},{"not":{"ref":"out"}}]}`, port)),
	}
}

func TestInstanceCreateAndQuery(t *testing.T) {
	s := newTestServer(t, Config{})
	aclInstance(t, s, "edge0")

	res := s.Do(context.Background(), allowedOnPort("edge0", 80))
	if res.Status != "sat" || res.Provenance != ProvCold {
		t.Fatalf("port-80 find: %q/%q (%s)", res.Status, res.Provenance, res.ErrText())
	}
	res = s.Do(context.Background(), deniedOnPort("edge0", 22))
	if res.Status != "valid" {
		t.Fatalf("port-22 deny verify: %q (%s)", res.Status, res.ErrText())
	}

	// Error paths: bad family, duplicate name, registry-name clash,
	// malformed and unknown-field rules.
	for _, tc := range []struct {
		req  *InstanceRequest
		code string
		http int
	}{
		{&InstanceRequest{Name: "x", Family: "bgp"}, ErrUnknownFamily, http.StatusBadRequest},
		{&InstanceRequest{Name: "edge0", Family: "acl"}, ErrInstanceExists, http.StatusConflict},
		{&InstanceRequest{Name: "demo/add8", Family: "acl"}, ErrInstanceExists, http.StatusConflict},
		{&InstanceRequest{Name: "", Family: "acl"}, ErrBadRequest, http.StatusBadRequest},
		{&InstanceRequest{Name: "y", Family: "acl",
			Rules: []json.RawMessage{[]byte(`{"Permitt": true}`)}}, ErrBadRule, http.StatusBadRequest},
	} {
		res := s.CreateInstance(context.Background(), tc.req)
		if res.Status != "error" || res.Err == nil || res.Err.Code != tc.code || res.HTTPStatus() != tc.http {
			t.Fatalf("create %+v: got %+v, want code %s http %d", tc.req, res, tc.code, tc.http)
		}
	}

	// The instance shows up in the listing with its family and counters.
	list := s.Instances()
	if len(list) != 1 || list[0]["name"] != "edge0" || list[0]["family"] != "acl" {
		t.Fatalf("instances = %+v", list)
	}
}

// TestUpdateDeltaReuse is the tentpole acceptance path: after an update,
// queries whose footprint is disjoint from the change set are reused
// verbatim, intersecting ones are re-verified, and both carry delta
// provenance. On the acl family neither path invokes a solver.
func TestUpdateDeltaReuse(t *testing.T) {
	s := newTestServer(t, Config{})
	aclInstance(t, s, "edge1")
	ctx := context.Background()

	// Track two queries cold: the port-80 find and the port-22 deny
	// verify. Both cost at least one solve.
	var coldSolves int64
	for _, req := range []*Request{allowedOnPort("edge1", 80), deniedOnPort("edge1", 22)} {
		res := s.Do(ctx, req)
		if res.Status != "sat" && res.Status != "valid" {
			t.Fatalf("cold %s: %q (%s)", req.Kind, res.Status, res.ErrText())
		}
		coldSolves += res.SolveCount()
	}
	if coldSolves < 2 {
		t.Fatalf("cold solves = %d, want >= 2", coldSolves)
	}

	// Open ssh: permit dst port 22. This changes only port-22 headers,
	// so the port-80 find must be reused and the port-22 verify must
	// flip to invalid — both by state-set algebra, zero solves.
	var execs atomic.Int64
	s.onExec = func(queryKey) { execs.Add(1) }
	up := s.DoUpdate(ctx, &UpdateRequest{
		Instance: "edge1",
		Deltas:   []Delta{{Op: "insert", Index: 0, Rule: []byte(`{"Permit": true, "DstLow": 22, "DstHigh": 22}`)}},
	})
	if up.Status != "updated" || up.Generation != 1 || up.Rules != 3 {
		t.Fatalf("update: %+v (%v)", up, up.Err)
	}
	if up.Reused != 1 || up.Reverified != 1 {
		t.Fatalf("reused/reverified = %d/%d, want 1/1", up.Reused, up.Reverified)
	}
	if up.DirtyClasses < 1 || up.DirtyClasses > up.TotalClasses {
		t.Fatalf("dirty classes = %d of %d", up.DirtyClasses, up.TotalClasses)
	}
	// Reused answers repeat their original counters (that is the cost a
	// client would attribute to the answer); the update's own spend is
	// the re-verified queries' solves.
	var updateSolves int64
	for i, q := range up.Queries {
		if q.Provenance != ProvDelta {
			t.Fatalf("query %d provenance = %q", i, q.Provenance)
		}
		if len(q.Predicate) == 0 {
			t.Fatalf("query %d echoes no predicate", i)
		}
		if !q.Reused {
			updateSolves += q.SolveCount()
		}
	}
	if up.Queries[0].Status != "sat" || !up.Queries[0].Reused {
		t.Fatalf("port-80 query after update: %+v", up.Queries[0])
	}
	if up.Queries[1].Status != "invalid" || up.Queries[1].Reused {
		t.Fatalf("port-22 verify after update: %+v", up.Queries[1])
	}
	if up.Queries[1].Model == nil {
		t.Fatalf("re-verified invalid carries no counterexample")
	}

	// The acceptance criterion: delta re-verification must be at least
	// 10x cheaper than cold re-solving. On the exact-set path it is
	// infinitely cheaper — zero solver invocations against >= 2 cold.
	if updateSolves*10 > coldSolves {
		t.Fatalf("update solves = %d vs cold %d: not 10x cheaper", updateSolves, coldSolves)
	}
	if execs.Load() != 0 {
		t.Fatalf("update ran %d solver executions, want 0", execs.Load())
	}

	// The update primed the new generation's cache: re-asking the
	// tracked queries answers from the LRU with the delta stamp, still
	// without executing.
	res := s.Do(ctx, allowedOnPort("edge1", 80))
	if res.Provenance != ProvDelta || !res.Reused || res.Status != "sat" {
		t.Fatalf("post-update port-80: %+v", res)
	}
	res = s.Do(ctx, deniedOnPort("edge1", 22))
	if res.Provenance != ProvDelta || res.Reused || res.Status != "invalid" {
		t.Fatalf("post-update port-22 verify: %+v", res)
	}
	if execs.Load() != 0 {
		t.Fatalf("post-update queries executed %d times, want cache hits", execs.Load())
	}
	if st := s.Stats(); st.Updates != 1 || st.DeltaReused != 1 || st.DeltaReverified != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestUpdateRouteMapWitnessReuse covers the generic (list-typed) path:
// reuse rides on the cached witness still satisfying the new model.
func TestUpdateRouteMapWitnessReuse(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	res := s.CreateInstance(ctx, &InstanceRequest{
		Name: "rm0", Family: "routemap",
		Rules: []json.RawMessage{[]byte(`{"Permit": true, "MatchCommunity": 100}`)},
	})
	if res.Status != "created" {
		t.Fatalf("create: %+v", res)
	}

	// Is any route accepted? The witness carries community 100.
	accepted := &Request{Model: "rm0", Kind: "find", Predicate: []byte(`{"ref":"out.Ok"}`)}
	q := s.Do(ctx, accepted)
	if q.Status != "sat" {
		t.Fatalf("accepted find: %q (%s)", q.Status, q.ErrText())
	}

	// Appending an unrelated clause keeps the witness valid: reused.
	up := s.DoUpdate(ctx, &UpdateRequest{Instance: "rm0", Deltas: []Delta{
		{Op: "insert", Index: 1, Rule: []byte(`{"Permit": true, "MatchAsContains": 7}`)},
	}})
	if up.Status != "updated" || up.Reused != 1 || up.Reverified != 0 {
		t.Fatalf("append update: %+v (%v)", up, up.Err)
	}
	if !up.Queries[0].Reused || up.Queries[0].Status != "sat" {
		t.Fatalf("append query: %+v", up.Queries[0])
	}

	// Retargeting clause 0 to community 200 invalidates the witness:
	// the query re-solves (still sat through the new clause).
	up = s.DoUpdate(ctx, &UpdateRequest{Instance: "rm0", Deltas: []Delta{
		{Op: "modify", Index: 0, Rule: []byte(`{"Permit": true, "MatchCommunity": 200}`)},
		{Op: "delete", Index: 1},
	}})
	if up.Status != "updated" || up.Reused != 0 || up.Reverified != 1 {
		t.Fatalf("retarget update: %+v (%v)", up, up.Err)
	}
	if up.Queries[0].Reused || up.Queries[0].Status != "sat" || up.Queries[0].SolveCount() == 0 {
		t.Fatalf("retarget query: %+v", up.Queries[0])
	}
}

func TestUpdateErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	aclInstance(t, s, "edge2")
	ctx := context.Background()
	for _, tc := range []struct {
		req  *UpdateRequest
		code string
		http int
	}{
		{&UpdateRequest{Instance: "nope", Deltas: []Delta{{Op: "delete", Index: 0}}},
			ErrUnknownInstance, http.StatusNotFound},
		{&UpdateRequest{Instance: "edge2"}, ErrBadDelta, http.StatusBadRequest},
		{&UpdateRequest{Instance: "edge2", Deltas: []Delta{{Op: "delete", Index: 9}}},
			ErrBadDelta, http.StatusBadRequest},
		{&UpdateRequest{Instance: "edge2", Deltas: []Delta{{Op: "swap", Index: 0}}},
			ErrBadDelta, http.StatusBadRequest},
		{&UpdateRequest{Instance: "edge2", Deltas: []Delta{{Op: "insert", Index: 0, Rule: []byte(`{"Nope": 1}`)}}},
			ErrBadDelta, http.StatusBadRequest},
	} {
		res := s.DoUpdate(ctx, tc.req)
		if res.Status != "error" || res.Err == nil || res.Err.Code != tc.code || res.HTTPStatus() != tc.http {
			t.Fatalf("update %+v: got %+v, want %s/%d", tc.req, res, tc.code, tc.http)
		}
	}
	// A failed update must not advance the generation.
	if up := s.DoUpdate(ctx, &UpdateRequest{Instance: "edge2",
		Deltas: []Delta{{Op: "delete", Index: 1}}}); up.Generation != 1 {
		t.Fatalf("generation after one good update = %d, want 1", up.Generation)
	}
}

// TestConcurrentUpdateAndQuery races /v1/update against /v1/query on one
// instance. Run under -race this checks the generation/view locking; the
// assertions check that every answer is a complete verdict from some
// consistent generation.
func TestConcurrentUpdateAndQuery(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	aclInstance(t, s, "edge3")
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			op := []Delta{{Op: "insert", Index: 0, Rule: []byte(`{"Permit": true, "DstLow": 22, "DstHigh": 22}`)}}
			if i%2 == 1 {
				op = []Delta{{Op: "delete", Index: 0}}
			}
			if up := s.DoUpdate(ctx, &UpdateRequest{Instance: "edge3", Deltas: op}); up.Status != "updated" {
				errs <- fmt.Errorf("update %d: %+v (%v)", i, up.Status, up.Err)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				res := s.Do(ctx, allowedOnPort("edge3", 80+g))
				switch res.Status {
				case "sat", "unsat":
				default:
					errs <- fmt.Errorf("query %d/%d: %q (%s)", g, i, res.Status, res.ErrText())
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchPerItemErrors: one malformed sub-query fails its own slot
// with a bad_request entry; the rest of the batch still runs.
func TestBatchPerItemErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"queries":[
		{"model":"demo/add8","kind":"find","predicate":{"cmp":{"lhs":{"ref":"out"},"op":"eq","rhs":{"lit":5}}}},
		{"model": 42},
		{"model":"demo/add8","kind":"evaluate","args":[1]}
	]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("/v1/batch: %d %s", resp.StatusCode, b)
	}
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if batch.APIVersion != APIVersion || len(batch.Results) != 3 {
		t.Fatalf("batch envelope: %+v", batch)
	}
	if r := batch.Results[0]; r.Status != "sat" {
		t.Fatalf("result 0: %+v", r)
	}
	if r := batch.Results[1]; r.Status != "error" || r.Err == nil || r.Err.Code != ErrBadRequest {
		t.Fatalf("result 1: %+v", r)
	}
	if r := batch.Results[2]; r.Status != "ok" {
		t.Fatalf("result 2: %+v", r)
	}

	// Oversized batches still fail as a whole, with the stable code.
	var sb bytes.Buffer
	sb.WriteString(`{"queries":[`)
	for i := 0; i <= maxBatch; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"model":"demo/add8","kind":"evaluate","args":[1]}`)
	}
	sb.WriteString(`]}`)
	resp2, err := http.Post(ts.URL+"/v1/batch", "application/json", &sb)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var res Response
	if err := json.NewDecoder(resp2.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusBadRequest || res.Err == nil || res.Err.Code != ErrBatchTooLarge {
		t.Fatalf("oversized batch: %d %+v", resp2.StatusCode, res)
	}
}

// TestHTTPInstanceSurface drives the instance lifecycle over HTTP:
// create, list, query, update, and the error envelope on a bad delta.
func TestHTTPInstanceSurface(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := post("/v1/instances",
		`{"name":"web","family":"acl","rules":[{"Permit":true,"DstLow":80,"DstHigh":80}]}`)
	if code != http.StatusOK || !strings.Contains(body, `"verdict": "created"`) {
		t.Fatalf("create: %d %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/v1/instances")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"web"`) {
		t.Fatalf("list: %s", b)
	}

	code, body = post("/v1/query",
		`{"model":"web","kind":"find","predicate":{"all":[{"ref":"out"},{"cmp":{"lhs":{"ref":"in.DstPort"},"op":"eq","rhs":{"lit":80}}}]}}`)
	if code != http.StatusOK || !strings.Contains(body, `"verdict": "sat"`) {
		t.Fatalf("query: %d %s", code, body)
	}

	code, body = post("/v1/update",
		`{"instance":"web","deltas":[{"op":"modify","index":0,"rule":{"Permit":false,"DstLow":80,"DstHigh":80}}]}`)
	if code != http.StatusOK || !strings.Contains(body, `"verdict": "updated"`) ||
		!strings.Contains(body, `"provenance": "delta"`) {
		t.Fatalf("update: %d %s", code, body)
	}
	// Port 80 is now denied: the re-verified tracked query flipped.
	if !strings.Contains(body, `"verdict": "unsat"`) {
		t.Fatalf("update did not flip the tracked query: %s", body)
	}

	code, body = post("/v1/update", `{"instance":"web","deltas":[{"op":"delete","index":5}]}`)
	if code != http.StatusBadRequest || !strings.Contains(body, `"code": "bad_delta"`) {
		t.Fatalf("bad delta: %d %s", code, body)
	}
}

// TestLintEndpoint: GET /v1/lint serves the zenlint finding schema.
func TestLintEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/lint?model=demo/add8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/lint: %d", resp.StatusCode)
	}
	var lr LintResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.APIVersion != APIVersion || lr.Findings == nil {
		t.Fatalf("lint envelope: %+v", lr)
	}
	for _, f := range lr.Findings {
		if f.Model != "demo/add8" || f.Rule == "" || f.Severity == "" {
			t.Fatalf("finding misses identity: %+v", f)
		}
	}

	resp2, err := http.Get(ts.URL + "/v1/lint?model=nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var lr2 LintResponse
	if err := json.NewDecoder(resp2.Body).Decode(&lr2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusNotFound || lr2.Err == nil || lr2.Err.Code != ErrUnknownModel {
		t.Fatalf("/v1/lint unknown model: %d %+v", resp2.StatusCode, lr2)
	}

	// Every registered model lints without a filter; suppressed findings
	// appear only on request.
	resp3, err := http.Get(ts.URL + "/v1/lint?suppressed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var lr3 LintResponse
	if err := json.NewDecoder(resp3.Body).Decode(&lr3); err != nil {
		t.Fatal(err)
	}
	suppressed := 0
	for _, f := range lr3.Findings {
		if f.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Fatalf("expected suppressed findings across the registry, got %d findings, 0 suppressed", len(lr3.Findings))
	}
}
