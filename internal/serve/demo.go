package serve

import "zen-go/zen"

// Demo models for smoke tests and first contact with the service: a
// model the solver answers instantly and one whose BDD analysis is
// expensive enough to exercise deadlines (squaring a 32-bit value
// symbolically builds a shift-add multiplier whose BDD blows up). They
// register here — not in a nets/ package — so only processes linking the
// service see them; zenlint's registry scan does not.
func init() {
	zen.RegisterModel("demo/add8", func() zen.Lintable {
		return zen.Func(func(x zen.Value[uint8]) zen.Value[uint8] {
			return zen.AddC(x, 1)
		})
	})
	zen.RegisterModel("demo/square32", func() zen.Lintable {
		return zen.Func(func(x zen.Value[uint32]) zen.Value[uint32] {
			return zen.Mul(x, x)
		})
	})
}
