package serve

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// defaultSlowThreshold applies when a slow log is configured without an
// explicit threshold.
const defaultSlowThreshold = 100 * time.Millisecond

// SlowQueryRecord is one line of the slow-query log: everything needed
// to reproduce and diagnose the query without re-running it — identity
// (request id, model, predicate-DAG fingerprint), outcome, the phase
// breakdown, and the solver counters that explain where the time went.
type SlowQueryRecord struct {
	TimeUnixMS  int64   `json:"time_unix_ms"`
	RequestID   string  `json:"request_id,omitempty"`
	Model       string  `json:"model"`
	Kind        string  `json:"kind"`
	Backend     string  `json:"backend"`
	Status      string  `json:"status"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Fingerprint string  `json:"dag_fingerprint,omitempty"`
	Provenance  string  `json:"provenance,omitempty"`
	// Sampled marks a fast query included by 1-in-N sampling rather than
	// by crossing the threshold.
	Sampled bool  `json:"sampled,omitempty"`
	Solves  int64 `json:"solves"`
	// PhasesMS breaks the solver's wall time down by phase (build,
	// symeval, solve, decode, ...).
	PhasesMS     map[string]float64 `json:"phases_ms,omitempty"`
	DAGNodes     int64              `json:"dag_nodes,omitempty"`
	BDDNodes     int64              `json:"bdd_nodes,omitempty"`
	SATClauses   int64              `json:"sat_clauses,omitempty"`
	SATConflicts int64              `json:"sat_conflicts,omitempty"`
}

// slowLogger emits SlowQueryRecords as JSONL. The fast path costs one
// atomic increment and one duration compare; marshaling and the write
// lock are only paid by queries that actually log.
type slowLogger struct {
	w           io.Writer
	threshold   time.Duration
	sampleEvery int64

	mu   sync.Mutex // serializes line writes
	fast atomic.Int64
}

func newSlowLogger(w io.Writer, threshold time.Duration, sampleEvery int) *slowLogger {
	if w == nil {
		return nil
	}
	if threshold <= 0 {
		threshold = defaultSlowThreshold
	}
	return &slowLogger{w: w, threshold: threshold, sampleEvery: int64(sampleEvery)}
}

// maybeLog writes a record when the query crossed the threshold, or when
// 1-in-N sampling selects a fast one. Nil-safe: an unconfigured logger
// costs one nil check.
func (l *slowLogger) maybeLog(id string, req *Request, res *Response, elapsed time.Duration) {
	if l == nil {
		return
	}
	slow := elapsed >= l.threshold
	if !slow && (l.sampleEvery <= 0 || l.fast.Add(1)%l.sampleEvery != 0) {
		return
	}
	rec := SlowQueryRecord{
		TimeUnixMS:  time.Now().UnixMilli(),
		RequestID:   id,
		Model:       req.Model,
		Kind:        req.Kind,
		Backend:     normBackend(req.Backend),
		Status:      res.Status,
		ElapsedMS:   res.ElapsedMS,
		Fingerprint: res.fingerprint,
		Provenance:  res.Provenance,
		Sampled:     !slow,
		Solves:      res.SolveCount(),
	}
	if s := res.stats; s != nil {
		if len(s.Phases) > 0 {
			rec.PhasesMS = make(map[string]float64, len(s.Phases))
			for _, p := range s.Phases {
				rec.PhasesMS[p.Name] = float64(p.Total.Microseconds()) / 1000
			}
		}
		rec.DAGNodes = s.DAG.Nodes
		rec.BDDNodes = s.BDD.Nodes
		rec.SATClauses = s.SAT.Clauses
		rec.SATConflicts = s.SAT.Conflicts
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}
