package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zen-go/internal/obs"
)

// TestRequestIDGenerated checks the header satellite: a query without an
// X-Zen-Request-Id gets one, echoed both as a header and in the body.
func TestRequestIDGenerated(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(findEq("demo/add8", 3))
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Zen-Request-Id")
	if len(id) != 16 {
		t.Fatalf("generated id = %q, want 16 hex chars", id)
	}
	var res Response
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.RequestID != id {
		t.Fatalf("body request_id %q != header %q", res.RequestID, id)
	}
}

// TestRequestIDEchoed checks a client-sent id survives the round trip.
func TestRequestIDEchoed(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(findEq("demo/add8", 3))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	req.Header.Set("X-Zen-Request-Id", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Zen-Request-Id"); got != "client-id-42" {
		t.Fatalf("header = %q, want client-id-42", got)
	}
	var res Response
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.RequestID != "client-id-42" {
		t.Fatalf("body request_id = %q", res.RequestID)
	}
}

// TestInlineTrace checks the tentpole's service surface: "trace": true
// returns the query's span tree inline — request root, analysis child,
// solver phase leaves — with leaf durations consistent with the total.
func TestInlineTrace(t *testing.T) {
	s := newTestServer(t, Config{})
	req := findEq("demo/add8", 11)
	req.Trace = true
	ctx := WithRequestID(context.Background(), "trace-test")
	res := s.Do(ctx, req)
	if res.Status != "sat" {
		t.Fatalf("status = %q (%s)", res.Status, res.ErrText())
	}
	tr := res.Trace
	if tr == nil || tr.Name != "query" {
		t.Fatalf("trace missing or misnamed: %+v", tr)
	}
	for k, want := range map[string]any{
		"model": "demo/add8", "kind": "find", "backend": "bdd",
		"status": "sat", "request_id": "trace-test", "dag": res.fingerprint,
	} {
		if tr.Attrs[k] != want {
			t.Fatalf("root attr %q = %v, want %v", k, tr.Attrs[k], want)
		}
	}
	find := tr.Find("find/bdd")
	if find == nil {
		t.Fatalf("no find/bdd span:\n%s", tr)
	}
	for _, phase := range []string{"solve", "decode"} {
		if find.Find(phase) == nil {
			t.Fatalf("no %s phase span:\n%s", phase, tr)
		}
	}
	// Leaf durations are contained in the root interval, and the root
	// interval is consistent with the reported wall time.
	if leaf := obs.SumLeafDurNS(tr); leaf <= 0 || leaf > tr.DurNS {
		t.Fatalf("leaf sum %d outside root %d", leaf, tr.DurNS)
	}
	if rootMS := float64(tr.DurNS) / 1e6; rootMS > res.ElapsedMS+1 {
		t.Fatalf("root span %.3fms exceeds elapsed %.3fms", rootMS, res.ElapsedMS)
	}

	// An untraced request must carry no tree.
	if res2 := s.Do(ctx, findEq("demo/add8", 11)); res2.Trace != nil {
		t.Fatalf("untraced response has a trace")
	}
}

// TestInlineTraceCached: a cache hit is traced too — the root notes
// cached=true and contains no solver spans (no work happened).
func TestInlineTraceCached(t *testing.T) {
	s := newTestServer(t, Config{})
	if res := s.Do(context.Background(), findEq("demo/add8", 23)); res.Status != "sat" {
		t.Fatalf("warmup: %q", res.Status)
	}
	req := findEq("demo/add8", 23)
	req.Trace = true
	res := s.Do(context.Background(), req)
	if !res.Cached() {
		t.Fatalf("repeat not cached")
	}
	if res.Trace == nil || res.Trace.Attrs["provenance"] != ProvCached {
		t.Fatalf("cached trace = %+v", res.Trace)
	}
	if res.Trace.Find("find/bdd") != nil {
		t.Fatalf("cache hit shows solver spans:\n%s", res.Trace)
	}
}

// TestTraceParallelQueries runs traced queries concurrently: each
// response's tree must describe its own request only — exactly one
// analysis span, and the root's request id is the caller's. Run under
// -race this also checks the span plumbing itself.
func TestTraceParallelQueries(t *testing.T) {
	s := newTestServer(t, Config{Workers: 8, CacheSize: 1})
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct predicates so queries neither coalesce nor hit cache.
			req := findEq("demo/add8", uint64(i%200))
			req.Trace = true
			id := fmt.Sprintf("par-%d", i)
			res := s.Do(WithRequestID(context.Background(), id), req)
			if res.Status != "sat" {
				errs <- fmt.Errorf("query %d: status %q (%s)", i, res.Status, res.ErrText())
				return
			}
			tr := res.Trace
			if tr == nil {
				errs <- fmt.Errorf("query %d: no trace", i)
				return
			}
			if tr.Attrs["request_id"] != id {
				errs <- fmt.Errorf("query %d: trace carries id %v", i, tr.Attrs["request_id"])
				return
			}
			var analyses int
			for _, c := range tr.Children {
				if strings.HasPrefix(c.Name, "find/") {
					analyses++
				}
			}
			if !res.Cached() && !res.Coalesced() && analyses != 1 {
				errs <- fmt.Errorf("query %d: %d analysis spans in tree:\n%s", i, analyses, tr)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMetricsEndpoint is the acceptance criterion: /metrics serves valid
// Prometheus exposition (checked by the parser/linter), including
// per-model histogram bucket series for executed queries.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	if res := s.Do(context.Background(), findEq("demo/add8", 5)); res.Status != "sat" {
		t.Fatalf("seed query: %q", res.Status)
	}
	if res := s.Do(context.Background(), findEq("demo/add8", 5)); !res.Cached() {
		t.Fatalf("seed repeat not cached")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := obs.LintMetrics(strings.NewReader(out)); err != nil {
		t.Fatalf("/metrics fails exposition lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"zen_serve_queries_total 2",
		"zen_serve_cache_hits_total 1",
		`zen_serve_model_request_seconds_bucket{model="demo/add8",backend="bdd",verdict="sat",le="+Inf"} 2`,
		`zen_serve_model_request_seconds_count{model="demo/add8",backend="bdd",verdict="sat"} 2`,
		"zen_serve_request_seconds_bucket",
		"zen_analyses_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestSlowQueryLog checks the slow-log tentpole piece: queries over the
// threshold emit JSONL records carrying identity, phase breakdown, and
// solver counters.
func TestSlowQueryLog(t *testing.T) {
	var log bytes.Buffer
	// A nanosecond threshold makes every query "slow".
	s := newTestServer(t, Config{SlowLog: &log, SlowThreshold: time.Nanosecond})
	ctx := WithRequestID(context.Background(), "slow-1")
	if res := s.Do(ctx, findEq("demo/add8", 17)); res.Status != "sat" {
		t.Fatalf("query: %q", res.Status)
	}
	if res := s.Do(ctx, findEq("demo/add8", 17)); !res.Cached() {
		t.Fatalf("repeat not cached")
	}

	var recs []SlowQueryRecord
	sc := bufio.NewScanner(&log)
	for sc.Scan() {
		var r SlowQueryRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2\n%s", len(recs), log.String())
	}
	cold := recs[0]
	if cold.RequestID != "slow-1" || cold.Model != "demo/add8" || cold.Kind != "find" {
		t.Fatalf("cold record identity: %+v", cold)
	}
	if cold.Fingerprint == "" || cold.Solves == 0 || cold.ElapsedMS <= 0 {
		t.Fatalf("cold record measurements: %+v", cold)
	}
	// A sub-millisecond solve rounds to 0, so assert presence, not size.
	if _, ok := cold.PhasesMS["solve"]; !ok {
		t.Fatalf("cold record has no solve phase: %+v", cold.PhasesMS)
	}
	warm := recs[1]
	if warm.Provenance != ProvCached || warm.Fingerprint != cold.Fingerprint {
		t.Fatalf("warm record: %+v", warm)
	}
}

// TestSlowQueryLogSampling: with an unreachable threshold, only 1-in-N
// fast queries log, marked sampled.
func TestSlowQueryLogSampling(t *testing.T) {
	var log bytes.Buffer
	s := newTestServer(t, Config{SlowLog: &log, SlowThreshold: time.Hour, SlowSampleEvery: 2})
	for i := 0; i < 4; i++ {
		if res := s.Do(context.Background(), findEq("demo/add8", uint64(30+i))); res.Status != "sat" {
			t.Fatalf("query %d: %q", i, res.Status)
		}
	}
	lines := strings.Count(log.String(), "\n")
	if lines != 2 {
		t.Fatalf("sampled lines = %d, want 2\n%s", lines, log.String())
	}
	var r SlowQueryRecord
	if err := json.Unmarshal([]byte(strings.SplitN(log.String(), "\n", 2)[0]), &r); err != nil {
		t.Fatal(err)
	}
	if !r.Sampled {
		t.Fatalf("fast record not marked sampled: %+v", r)
	}
}

// TestStatsQuantilesFromHistogram: the p50/p99 surface survives the
// latency-ring replacement, now answered by the shared histogram.
func TestStatsQuantilesFromHistogram(t *testing.T) {
	s := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		s.Do(context.Background(), findEq("demo/add8", uint64(50+i)))
	}
	st := s.Stats()
	if st.P50MS <= 0 || st.P99MS <= 0 {
		t.Fatalf("quantiles empty: p50=%g p99=%g", st.P50MS, st.P99MS)
	}
	if st.P50MS > st.P99MS {
		t.Fatalf("p50 %g > p99 %g", st.P50MS, st.P99MS)
	}
}
