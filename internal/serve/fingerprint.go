package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"zen-go/internal/core"
)

// fingerprint returns a structural hash of a predicate DAG, stable
// across processes. The old fingerprint was the interned node's address:
// free within one process (hash-consing makes structural identity
// pointer identity) but meaningless across restarts, where persisted
// snapshots must re-identify predicates. Two instabilities have to be
// canonicalized away:
//
//   - VarIDs come from a process-global counter, so the same model
//     rebuilt in a new process numbers its variables differently. The
//     hash renames every variable to its first-visit index in a
//     deterministic DFS — alpha-equivalent DAGs hash equal.
//   - Pointers obviously differ; the hash covers structure only (op,
//     type, constants, field indices, list bounds, children).
//
// Within one process the root pointer is still a perfect identity, so
// computed fingerprints are memoized on it: repeated queries pay one
// sync.Map hit, and the serve/query-cold sentinel does not feel the DAG
// walk after its first iteration.
func fingerprint(root *core.Node) string {
	if fp, ok := fpCache.Load(root); ok {
		return fp.(string)
	}
	h := &fpHasher{
		memo: make(map[*core.Node][]byte),
		vars: make(map[int32]uint32),
	}
	sum := sha256.Sum256(h.hash(root))
	fp := hex.EncodeToString(sum[:16])
	fpCache.Store(root, fp)
	return fp
}

var fpCache sync.Map // *core.Node -> string

type fpHasher struct {
	memo map[*core.Node][]byte // per-walk subtree digests
	vars map[int32]uint32      // VarID -> canonical index, first-visit order
}

// hash computes a 32-byte digest of the subtree. Shared subtrees are
// visited once; the memo is sound because variable canonicalization is
// assigned in deterministic DFS preorder, so a subtree's digest does not
// depend on where in the walk it was first reached beyond that global
// numbering — which is itself a function of the (deterministic) walk.
func (h *fpHasher) hash(n *core.Node) []byte {
	if d, ok := h.memo[n]; ok {
		return d
	}
	buf := make([]byte, 0, 64)
	var w [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	u64(uint64(n.Op))
	buf = append(buf, n.Type.String()...)
	buf = append(buf, 0)
	if n.BVal {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	u64(n.UVal)
	u64(uint64(n.Index))
	if n.VarID != 0 {
		idx, ok := h.vars[n.VarID]
		if !ok {
			idx = uint32(len(h.vars))
			h.vars[n.VarID] = idx
		}
		u64(uint64(idx) + 1)
	} else {
		u64(0)
	}
	// Bound vars (OpListCase) are hashed before Kids so their canonical
	// indices are assigned at the binding site, not first use.
	u64(uint64(len(n.Bound)))
	for _, b := range n.Bound {
		buf = append(buf, h.hash(b)...)
	}
	for _, k := range n.Kids {
		buf = append(buf, h.hash(k)...)
	}
	sum := sha256.Sum256(buf)
	d := sum[:]
	h.memo[n] = d
	return d
}
