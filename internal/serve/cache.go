package serve

import (
	"container/list"
	"sync"

	"zen-go/internal/core"
	"zen-go/zen"
)

// queryKey is the canonical fingerprint of a solver query. The predicate
// is identified by its DAG node pointer: the global builder hash-conses,
// so structurally identical predicates — whatever JSON spelling they
// arrived in — share one pointer, and distinct predicates never collide
// (two different DAGs are two different interned nodes). The remaining
// fields capture everything else that changes the answer.
type queryKey struct {
	model   string
	kind    queryKind
	backend zen.Backend
	cond    *core.Node
	max     int
	bound   int
}

type queryKind uint8

const (
	kindFind queryKind = iota
	kindFindAll
	kindVerify
	kindEvaluate
)

func (k queryKind) String() string {
	switch k {
	case kindFind:
		return "find"
	case kindFindAll:
		return "findall"
	case kindVerify:
		return "verify"
	case kindEvaluate:
		return "evaluate"
	}
	return "?"
}

// lruCache is a mutex-guarded LRU over completed query responses.
// Cancelled and failed queries are never inserted, so a hit is always a
// full answer.
type lruCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent
	m   map[queryKey]*list.Element
}

type lruEntry struct {
	key queryKey
	res *Response
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), m: make(map[queryKey]*list.Element)}
}

func (c *lruCache) get(k queryKey) (*Response, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) put(k queryKey, res *Response) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&lruEntry{key: k, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
