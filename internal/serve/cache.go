package serve

import (
	"container/list"
	"errors"
	"sync"

	"zen-go/internal/backends"
	"zen-go/internal/bdd"
	"zen-go/internal/cancel"
	"zen-go/internal/core"
	"zen-go/internal/sym"
	"zen-go/zen"
)

// queryKey is the canonical fingerprint of a solver query. The predicate
// is identified by its DAG node pointer: the global builder hash-conses,
// so structurally identical predicates — whatever JSON spelling they
// arrived in — share one pointer, and distinct predicates never collide
// (two different DAGs are two different interned nodes). The remaining
// fields capture everything else that changes the answer.
type queryKey struct {
	model   string
	kind    queryKind
	backend zen.Backend
	cond    *core.Node
	max     int
	bound   int
	// gen is the instance generation the query ran against; 0 for
	// registry models. Including it keys every /v1/update to a fresh
	// cache line — verdicts about an old rule set never answer queries
	// about the new one.
	gen uint64
}

type queryKind uint8

const (
	kindFind queryKind = iota
	kindFindAll
	kindVerify
	kindEvaluate
)

func (k queryKind) String() string {
	switch k {
	case kindFind:
		return "find"
	case kindFindAll:
		return "findall"
	case kindVerify:
		return "verify"
	case kindEvaluate:
		return "evaluate"
	}
	return "?"
}

// lruCache is a mutex-guarded LRU over completed query responses.
// Cancelled and failed queries are never inserted, so a hit is always a
// full answer.
type lruCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent
	m   map[queryKey]*list.Element
}

type lruEntry struct {
	key queryKey
	res *Response
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), m: make(map[queryKey]*list.Element)}
}

func (c *lruCache) get(k queryKey) (*Response, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) put(k queryKey, res *Response) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&lruEntry{key: k, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// entries snapshots the cache contents, most recent first (used by the
// shutdown snapshot writer).
func (c *lruCache) entries() []*lruEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*lruEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry))
	}
	return out
}

// --- Subsumption index ---
//
// The LRU above answers only pointer-identical predicates. The
// subsumption index answers *implied* ones: a cached UNSAT for P proves
// any Q with Q ⇒ P unsat, and a cached witness for P satisfies any Q
// with P ⇒ Q. Both implications are decided on a BDD — each (model,
// bound, generation) triple keeps a small private manager where every
// distinct predicate compiles once, and an implication test is a single
// hash-consed Ite on that DAG.
//
// The index deliberately outlives LRU eviction: result entries are tiny
// (a ref plus a witness map), so a predicate squeezed out of the LRU by
// churn still answers future queries it implies. Eviction here is a
// bounded FIFO per world.
//
// Soundness notes:
//   - Entries record satisfiability of a condition DAG, which is
//     backend-independent, so a SAT-backend result may answer a
//     BDD-backend query and vice versa.
//   - find and verify share the index (verify conditions arrive
//     pre-negated); the verdict is re-phrased per kind at lookup.
//   - findall and evaluate never consult or feed the index.
//   - Model instances bump their generation on every /v1/update, which
//     keys them to a fresh world: verdicts about a previous rule set
//     must never answer queries about the current one.

// subsumeBudgetPolls bounds the BDD work a subsumption compile may do.
// The manager polls its interrupt every 1024 cache misses, so this
// allows on the order of a hundred thousand node operations — plenty for
// service predicates, a quick abort for the documented BDD blowups
// (demo/square32's 32-bit multiply), which simply fall through to the
// normal solve path.
const subsumeBudgetPolls = 96

// maxSubsumeEntries bounds each world's entry lists.
const maxSubsumeEntries = 512

var errSubsumeBudget = errors.New("subsumption compile budget exhausted")

type subWorldKey struct {
	model string
	gen   uint64
	bound int
}

type subEntry struct {
	ref bdd.Ref
	// sat entries carry the witness (encoded as a Response model map)
	// and the original solve cost; unsat entries only the ref.
	model  map[string]any
	solves int64
}

// subWorld is the per-(model, generation, bound) compilation context.
type subWorld struct {
	alg   *backends.BDD
	env   sym.Env[bdd.Ref]
	refs  map[*core.Node]bdd.Ref
	unsat []subEntry
	sat   []subEntry
}

// subsumeStore guards all subsumption worlds with one mutex: the BDD
// managers are not concurrency-safe, and lookups are cheap relative to
// the solves they replace.
type subsumeStore struct {
	mu     sync.Mutex
	worlds map[subWorldKey]*subWorld
}

func newSubsumeStore() *subsumeStore {
	return &subsumeStore{worlds: make(map[subWorldKey]*subWorld)}
}

// world returns (building if needed) the compilation context for a
// model's argument variables.
func (st *subsumeStore) world(key subWorldKey, args []*core.Node) *subWorld {
	if w, ok := st.worlds[key]; ok {
		return w
	}
	w := &subWorld{
		alg:  backends.NewBDD(),
		env:  sym.Env[bdd.Ref]{},
		refs: make(map[*core.Node]bdd.Ref),
	}
	for _, a := range args {
		in := sym.Fresh(w.alg, a.Type, key.bound, a.Name)
		w.env[a.VarID] = in.Val
	}
	st.worlds[key] = w
	return w
}

// compile evaluates a condition DAG to a BDD ref in this world, bounded
// by the poll budget. A budget abort leaves the world usable (the
// manager's node store is append-only and consistent at every poll).
func (w *subWorld) compile(cond *core.Node) (ref bdd.Ref, err error) {
	if r, ok := w.refs[cond]; ok {
		return r, nil
	}
	defer cancel.Trap(&err)
	polls := 0
	chk := cancel.Check(func() error {
		polls++
		if polls > subsumeBudgetPolls {
			return errSubsumeBudget
		}
		return nil
	})
	w.alg.SetInterrupt(chk)
	defer w.alg.SetInterrupt(nil)
	v := sym.EvalCheck(w.alg, cond, w.env, chk)
	w.refs[cond] = v.Bit
	return v.Bit, nil
}

// lookup tries to answer a find/verify query by implication. UNSAT
// entries are consulted before SAT entries: when both could apply the
// definite-emptiness proof wins (and if the index is consistent they
// cannot genuinely conflict — Q ⇒ P_unsat and P_sat ⇒ Q would make
// P_sat's witness a member of the empty Q).
func (st *subsumeStore) lookup(key subWorldKey, args []*core.Node, cond *core.Node, kind queryKind) (*Response, bool) {
	if kind != kindFind && kind != kindVerify {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	w, ok := st.worlds[key]
	if !ok || (len(w.unsat) == 0 && len(w.sat) == 0) {
		return nil, false
	}
	q, err := w.compile(cond)
	if err != nil {
		return nil, false
	}
	man := w.alg.Man
	for _, e := range w.unsat {
		if man.Implies(q, e.ref) == bdd.True {
			return subsumedResponse(kind, false, nil, e.solves), true
		}
	}
	for _, e := range w.sat {
		if man.Implies(e.ref, q) == bdd.True {
			return subsumedResponse(kind, true, e.model, e.solves), true
		}
	}
	return nil, false
}

// insert records a completed find/verify answer for future implication
// checks. Failures are silent: an over-budget compile just means this
// predicate will not subsume others.
func (st *subsumeStore) insert(key subWorldKey, args []*core.Node, cond *core.Node, res *Response) {
	var sat bool
	switch res.Status {
	case "sat", "invalid":
		sat = true
	case "unsat", "valid":
	default:
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	w := st.world(key, args)
	ref, err := w.compile(cond)
	if err != nil {
		return
	}
	e := subEntry{ref: ref, solves: res.SolveCount()}
	if sat {
		e.model = res.Model
		w.sat = appendBounded(w.sat, e)
	} else {
		w.unsat = appendBounded(w.unsat, e)
	}
}

// seed installs an entry with an already-compiled ref (snapshot load).
func (st *subsumeStore) seed(key subWorldKey, args []*core.Node, ref bdd.Ref, sat bool, model map[string]any, solves int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	w := st.world(key, args)
	e := subEntry{ref: ref, model: model, solves: solves}
	if sat {
		w.sat = appendBounded(w.sat, e)
	} else {
		w.unsat = appendBounded(w.unsat, e)
	}
}

func appendBounded(s []subEntry, e subEntry) []subEntry {
	for _, have := range s {
		if have.ref == e.ref {
			return s
		}
	}
	if len(s) >= maxSubsumeEntries {
		copy(s, s[1:])
		s = s[:len(s)-1]
	}
	return append(s, e)
}

// invalidate drops every world of a model (all generations and bounds):
// called by /v1/update, whose new rule set makes old verdicts stale.
func (st *subsumeStore) invalidate(model string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for k := range st.worlds {
		if k.model == model {
			delete(st.worlds, k)
		}
	}
}

// subsumedResponse re-phrases a transferred satisfiability verdict for
// the query's kind.
func subsumedResponse(kind queryKind, sat bool, model map[string]any, solves int64) *Response {
	res := &Response{Provenance: ProvSubsumed, Counters: &Counters{Solves: solves}}
	switch {
	case kind == kindFind && sat:
		res.Status, res.Model = "sat", model
	case kind == kindFind:
		res.Status = "unsat"
	case sat:
		res.Status, res.Model = "invalid", model
	default:
		res.Status = "valid"
	}
	return res
}
