package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"zen-go/internal/bdd"
)

// Persistent per-model snapshots: the warm state a drained zend writes
// to disk and a starting zend reads back, so a restart does not reset
// every answer to a cold solve. Two things persist per model:
//
//   - Exact results, keyed on the structural DAG fingerprint (see
//     fingerprint.go) plus kind/max/bound: a restarted server answers a
//     previously-cached query without touching a solver.
//   - The subsumption index's reachable BDD node table with its
//     unsat/sat roots, so implication answers also survive restarts.
//
// Files are guarded by a model fingerprint (the hash of the model's own
// result DAG): if the model changed between runs, its snapshot is
// silently discarded — persisted verdicts describe the old semantics.
//
// Snapshots cover registry models only. Dynamic instances are created
// through the API after start and cannot meaningfully outlive their
// process; their warm state is rebuilt by /v1/update traffic.

// snapshotFile is the on-disk format, one file per model.
type snapshotFile struct {
	APIVersion string         `json:"api_version"`
	Model      string         `json:"model"`
	ModelFP    string         `json:"model_fp"`
	Entries    []snapEntry    `json:"entries,omitempty"`
	BDD        *bdd.Snapshot  `json:"bdd,omitempty"`
	Unsat      []snapSubEntry `json:"unsat,omitempty"`
	Sat        []snapSubEntry `json:"sat,omitempty"`
}

// snapEntry is one exact, fingerprint-keyed result.
type snapEntry struct {
	FP      string           `json:"fp"`
	Kind    string           `json:"kind"`
	Max     int              `json:"max,omitempty"`
	Bound   int              `json:"bound,omitempty"`
	Verdict string           `json:"verdict"`
	Model   map[string]any   `json:"model,omitempty"`
	Models  []map[string]any `json:"models,omitempty"`
	Solves  int64            `json:"solves"`
}

// snapSubEntry is one subsumption-index entry; Root indexes BDD.Roots.
type snapSubEntry struct {
	Root   int            `json:"root"`
	Model  map[string]any `json:"model,omitempty"`
	Solves int64          `json:"solves"`
}

type snapKey struct {
	model string
	fp    string
	kind  queryKind
	max   int
	bound int
}

// snapshotStore is the in-memory exact map loaded from disk.
type snapshotStore struct {
	dir   string
	mu    sync.Mutex
	exact map[snapKey]*snapEntry
}

func newSnapshotStore(dir string) *snapshotStore {
	return &snapshotStore{dir: dir, exact: make(map[snapKey]*snapEntry)}
}

func (st *snapshotStore) enabled() bool { return st != nil && st.dir != "" }

// hit answers a query from the exact map, nil on miss.
func (st *snapshotStore) hit(model, fp string, k queryKey) *Response {
	if !st.enabled() {
		return nil
	}
	st.mu.Lock()
	e, ok := st.exact[snapKey{model: model, fp: fp, kind: k.kind, max: k.max, bound: k.bound}]
	st.mu.Unlock()
	if !ok {
		return nil
	}
	return &Response{
		Status:       e.Verdict,
		Provenance:   ProvCached,
		FromSnapshot: true,
		Model:        e.Model,
		Models:       e.Models,
		Counters:     &Counters{Solves: e.Solves},
	}
}

func snapshotPath(dir, model string) string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, model)
	return filepath.Join(dir, name+".snap.json")
}

// load reads every snapshot file for the server's models, filling the
// exact map and seeding the subsumption index. Unreadable, stale, or
// malformed files are skipped (a snapshot is an optimization, never a
// correctness dependency).
func (s *Server) loadSnapshots() {
	st := s.snapshots
	if !st.enabled() {
		return
	}
	for name, entry := range s.models {
		raw, err := os.ReadFile(snapshotPath(st.dir, name))
		if err != nil {
			continue
		}
		var file snapshotFile
		if err := json.Unmarshal(raw, &file); err != nil || file.Model != name {
			continue
		}
		m := entry.queryable()
		if m == nil || file.ModelFP != fingerprint(m.QueryOut()) {
			continue // model changed since the snapshot; verdicts are stale
		}
		st.mu.Lock()
		for i := range file.Entries {
			e := &file.Entries[i]
			k := snapKey{model: name, fp: e.FP, max: e.Max, bound: e.Bound}
			switch e.Kind {
			case "find":
				k.kind = kindFind
			case "findall":
				k.kind = kindFindAll
			case "verify":
				k.kind = kindVerify
			default:
				continue
			}
			st.exact[k] = e
		}
		st.mu.Unlock()
		if file.BDD == nil {
			continue
		}
		// Rebuild the subsumption world: Fresh allocation is
		// deterministic for a fixed model, so the persisted levels line
		// up with a freshly-built world's.
		key := subWorldKey{model: name, gen: 0, bound: 0}
		s.subsume.mu.Lock()
		w := s.subsume.world(key, m.QueryArgs())
		roots, err := w.alg.Man.Import(file.BDD)
		s.subsume.mu.Unlock()
		if err != nil {
			continue
		}
		seed := func(entries []snapSubEntry, sat bool) {
			for _, e := range entries {
				if e.Root < 0 || e.Root >= len(roots) {
					continue
				}
				s.subsume.seed(key, m.QueryArgs(), roots[e.Root], sat, e.Model, e.Solves)
			}
		}
		seed(file.Unsat, false)
		seed(file.Sat, true)
	}
}

// writeSnapshots persists warm state on drain: the LRU's completed
// results (exact entries) merged over anything loaded at start, plus the
// generation-0 subsumption worlds' BDD tables.
func (s *Server) writeSnapshots() error {
	st := s.snapshots
	if !st.enabled() {
		return nil
	}
	files := make(map[string]*snapshotFile)
	fileFor := func(model string) *snapshotFile {
		f, ok := files[model]
		if !ok {
			f = &snapshotFile{APIVersion: APIVersion, Model: model}
			files[model] = f
		}
		return f
	}
	// Round-trip entries loaded at start so an idle restart keeps them.
	st.mu.Lock()
	written := make(map[snapKey]bool, len(st.exact))
	for k, e := range st.exact {
		fileFor(k.model).Entries = append(fileFor(k.model).Entries, *e)
		written[k] = true
	}
	st.mu.Unlock()
	for _, le := range s.cache.entries() {
		k := le.key
		if _, ok := s.models[k.model]; !ok {
			continue // dynamic instance; not persisted
		}
		res := le.res
		switch res.Status {
		case "sat", "unsat", "valid", "invalid":
		default:
			continue
		}
		sk := snapKey{model: k.model, fp: fingerprint(k.cond), kind: k.kind, max: k.max, bound: k.bound}
		if written[sk] {
			continue
		}
		written[sk] = true
		fileFor(k.model).Entries = append(fileFor(k.model).Entries, snapEntry{
			FP: sk.fp, Kind: k.kind.String(), Max: k.max, Bound: k.bound,
			Verdict: res.Status, Model: res.Model, Models: res.Models,
			Solves: res.SolveCount(),
		})
	}
	// Subsumption worlds: export each registry model's gen-0, bound-0
	// world (list-bounded worlds use per-bound variable spaces and are
	// not persisted).
	s.subsume.mu.Lock()
	for key, w := range s.subsume.worlds {
		if key.gen != 0 || key.bound != 0 {
			continue
		}
		if _, ok := s.models[key.model]; !ok {
			continue
		}
		if len(w.unsat) == 0 && len(w.sat) == 0 {
			continue
		}
		f := fileFor(key.model)
		var roots []bdd.Ref
		for _, e := range w.unsat {
			f.Unsat = append(f.Unsat, snapSubEntry{Root: len(roots), Model: e.model, Solves: e.solves})
			roots = append(roots, e.ref)
		}
		for _, e := range w.sat {
			f.Sat = append(f.Sat, snapSubEntry{Root: len(roots), Model: e.model, Solves: e.solves})
			roots = append(roots, e.ref)
		}
		f.BDD = w.alg.Man.Export(roots)
	}
	s.subsume.mu.Unlock()

	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return err
	}
	var firstErr error
	for model, f := range files {
		m := s.models[model].queryable()
		if m == nil {
			continue
		}
		f.ModelFP = fingerprint(m.QueryOut())
		raw, err := json.Marshal(f)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		path := snapshotPath(st.dir, model)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, raw, 0o644); err == nil {
			err = os.Rename(tmp, path)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return fmt.Errorf("serve: snapshot write: %w", firstErr)
	}
	return nil
}
