package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zen-go/internal/core"
	"zen-go/internal/obs"
	"zen-go/zen"
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrent solver executions (default 4).
	Workers int
	// Queue bounds executions waiting for a worker; a query arriving with
	// the queue full is shed with HTTP 429 (default 16).
	Queue int
	// CacheSize bounds the LRU result cache in entries; 0 disables
	// caching (default 256).
	CacheSize int
	// PortfolioWorkers is the SAT worker count for portfolio-backend
	// queries; 0 lets the portfolio pick its own default.
	PortfolioWorkers int
	// DefaultTimeout applies to queries that do not set timeout_ms;
	// zero means no deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps per-query timeout_ms requests; zero means no cap.
	MaxTimeout time.Duration
	// SlowLog, when set, receives one JSON line (a SlowQueryRecord) per
	// query slower than SlowThreshold.
	SlowLog io.Writer
	// SlowThreshold is the slow-query latency cutoff (default 100ms when
	// SlowLog is set).
	SlowThreshold time.Duration
	// SlowSampleEvery additionally logs one in every N fast queries
	// (marked "sampled": true), so the log shows the baseline the slow
	// tail deviates from; 0 disables sampling.
	SlowSampleEvery int
	// SnapshotDir, when set, persists per-model warm state (exact
	// results plus the subsumption index's BDD tables) on drain and
	// loads it on start; see snapshot.go.
	SnapshotDir string
	// Presolve runs the abstract-interpretation presolve pass on every
	// solver query (zen.WithPresolve); zend enables it by default.
	Presolve bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Queue == 0 {
		c.Queue = 16
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	return c
}

// Request is one query against a registered model.
type Request struct {
	// Model names a zen.RegisterModel entry (see /v1/models).
	Model string `json:"model"`
	// Kind is "find", "findall", "verify", or "evaluate".
	Kind string `json:"kind"`
	// Backend is "bdd" (default), "sat", "portfolio" (race both, first
	// verdict wins; see docs/portfolio.md), or "auto" (pick statically
	// per query from DAG features; see docs/absint.md).
	Backend string `json:"backend,omitempty"`
	// Predicate is the condition for find/findall/verify; see predJSON.
	Predicate json.RawMessage `json:"predicate,omitempty"`
	// Args are the concrete argument values for evaluate.
	Args []json.RawMessage `json:"args,omitempty"`
	// Max bounds findall enumeration (default 10).
	Max int `json:"max,omitempty"`
	// ListBound bounds symbolic list lengths (default zen's).
	ListBound int `json:"list_bound,omitempty"`
	// TimeoutMS bounds this query's solve time.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Trace requests an inline span tree of this query's execution in
	// Response.Trace.
	Trace bool `json:"trace,omitempty"`
}

// modelEntry lazily builds a registered model: DAG construction can be
// expensive, so it happens on first use and is shared afterwards.
type modelEntry struct {
	name  string
	build func() zen.Lintable
	allow []string // registration allow-list (for /v1/lint)
	file  string   // registration site (for /v1/lint findings)
	line  int
	once  sync.Once
	l     zen.Lintable
	q     zen.Queryable // nil when the model is not queryable
}

func (e *modelEntry) built() zen.Lintable {
	e.once.Do(func() {
		e.l = e.build()
		if q, ok := e.l.(zen.Queryable); ok {
			e.q = q
		}
	})
	return e.l
}

func (e *modelEntry) queryable() zen.Queryable {
	e.built()
	return e.q
}

// Server executes queries against the model registry. Create one with
// New, serve it with Handler, and stop it with Shutdown.
type Server struct {
	cfg    Config
	models map[string]*modelEntry
	names  []string // sorted
	pool   *workerPool
	cache  *lruCache
	flight *flightGroup
	latAll *obs.Histogram    // every request, for aggregate quantiles
	latVec *obs.HistogramVec // by model, backend, verdict
	slow   *slowLogger       // nil when no slow log is configured

	subsume   *subsumeStore
	snapshots *snapshotStore

	// instances holds mutable model instances created via /v1/instances;
	// see instance.go.
	instMu    sync.RWMutex
	instances map[string]*instance

	draining atomic.Bool

	queries    atomic.Int64
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	subsumed   atomic.Int64
	snapHits   atomic.Int64
	coalesced  atomic.Int64
	shed       atomic.Int64
	cancelled  atomic.Int64
	errors     atomic.Int64
	updates    atomic.Int64
	deltaReuse atomic.Int64
	deltaRerun atomic.Int64

	// Streaming-evaluate traffic (see stream.go).
	streams      atomic.Int64
	streamItems  atomic.Int64
	streamErrors atomic.Int64

	// onExec, when non-nil, observes every solver execution actually
	// started (cache hits and coalesced waits bypass it). Test hook.
	onExec func(queryKey)
}

// New builds a server over the current zen.RegisterModel registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		models:    make(map[string]*modelEntry),
		pool:      newWorkerPool(cfg.Workers, cfg.Queue),
		cache:     newLRU(cfg.CacheSize),
		flight:    newFlightGroup(),
		latAll:    obs.NewHistogram(obs.DefaultLatencyBounds()),
		latVec:    obs.NewHistogramVec(obs.DefaultLatencyBounds(), "model", "backend", "verdict"),
		slow:      newSlowLogger(cfg.SlowLog, cfg.SlowThreshold, cfg.SlowSampleEvery),
		subsume:   newSubsumeStore(),
		snapshots: newSnapshotStore(cfg.SnapshotDir),
		instances: make(map[string]*instance),
	}
	for _, m := range zen.RegisteredModels() {
		s.models[m.Name] = &modelEntry{name: m.Name, build: m.Build, allow: m.Allow, file: m.File, line: m.Line}
		s.names = append(s.names, m.Name)
	}
	sort.Strings(s.names)
	s.loadSnapshots()
	publishExpvar(s)
	return s
}

// Shutdown drains the server: new queries are rejected with 503, and
// queued plus in-flight queries run to completion (each bounded by its
// own deadline) until ctx expires, at which point Shutdown returns the
// context's error with work still draining in the background.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.pool.drain()
		close(done)
	}()
	select {
	case <-done:
		return s.writeSnapshots()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do executes one query. It is the direct (non-HTTP) entry point; the
// HTTP handlers decode into a Request and call it. The request id (if
// any) rides in on the context — see WithRequestID.
func (s *Server) Do(ctx context.Context, req *Request) *Response {
	start := time.Now()
	id := RequestIDFrom(ctx)
	var root *obs.TreeSpan
	if req.Trace {
		// The trace is request-scoped: a private root span that nests the
		// solver's analysis spans (via ChildTracer in execute) and returns
		// inline with the response. Untraced requests never touch any of
		// this — tracing stays strictly pay-for-use.
		root = obs.NewTreeTracer().StartRoot("query")
		root.SetAttr("model", req.Model)
		root.SetAttr("kind", req.Kind)
		root.SetAttr("backend", normBackend(req.Backend))
		if id != "" {
			root.SetAttr("request_id", id)
		}
	}
	res := s.do(ctx, req, root)
	elapsed := time.Since(start)
	res.APIVersion = APIVersion
	res.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	res.RequestID = id
	if root != nil {
		root.SetAttr("status", res.Status)
		if res.Provenance != "" {
			root.SetAttr("provenance", res.Provenance)
		}
		if res.fingerprint != "" {
			root.SetAttr("dag", res.fingerprint)
		}
		root.End()
		res.Trace = root.Snapshot()
	}
	s.observeLatency(req, res, elapsed)
	s.slow.maybeLog(id, req, res, elapsed)
	s.publish(res)
	return res
}

// normBackend maps a request's backend field to its histogram/trace
// label: the default is bdd, and anything unknown collapses to one
// bounded label value (never client-controlled cardinality).
func normBackend(b string) string {
	switch b {
	case "", "bdd":
		return "bdd"
	case "sat":
		return "sat"
	case "portfolio":
		return "portfolio"
	case "auto":
		return "auto"
	default:
		return "invalid"
	}
}

// observeLatency records the request's wall time in the aggregate and
// the labeled latency histograms.
func (s *Server) observeLatency(req *Request, res *Response, d time.Duration) {
	s.latAll.Observe(d)
	model := req.Model
	if _, ok := s.models[model]; !ok {
		model = "unknown" // bound label cardinality against probe traffic
	}
	s.latVec.With(model, normBackend(req.Backend), res.Status).Observe(d)
}

func (s *Server) do(ctx context.Context, req *Request, span *obs.TreeSpan) *Response {
	if s.draining.Load() {
		return failResponse(http.StatusServiceUnavailable, ErrDraining, "server is shutting down")
	}
	q, resErr := s.prepare(req)
	if resErr != nil {
		return resErr
	}
	q.span = span
	ctx, cancelFn := q.bound(ctx, s.cfg)
	defer cancelFn()

	if q.key.kind == kindEvaluate {
		// Interpreter-speed, concrete-input queries: pooled for fairness
		// but neither cached nor coalesced (their identity lives in the
		// argument values, not in a predicate DAG).
		return s.runPooled(ctx, q)
	}
	if res, ok := s.cache.get(q.key); ok {
		s.cacheHits.Add(1)
		hit := *res
		if hit.Provenance != ProvDelta {
			// Delta-stamped entries keep their provenance (and Reused
			// flag): the interesting fact is that /v1/update vouched for
			// them, not that they sat in the LRU.
			hit.Provenance = ProvCached
		}
		hit.fingerprint = q.fp
		return &hit
	}
	s.cacheMiss.Add(1)
	// The LRU missed; before paying for a solve, try the two cheaper
	// tiers — the persisted snapshot (exact fingerprint match from a
	// previous process) and the subsumption index (an implied answer).
	if hit := s.snapshots.hit(q.key.model, q.fp, q.key); hit != nil {
		s.snapHits.Add(1)
		hit.fingerprint = q.fp
		s.cache.put(q.key, hit)
		return hit
	}
	if s.cfg.CacheSize > 0 {
		if hit, ok := s.subsume.lookup(q.subKey(), q.args, q.cond, q.key.kind); ok {
			s.subsumed.Add(1)
			hit.fingerprint = q.fp
			s.cache.put(q.key, hit)
			return hit
		}
	}
	res, coalesced, shedded, err := s.flight.do(ctx, q.key, func(execCtx context.Context, deliver func(*Response)) bool {
		return s.pool.submit(func() {
			r := s.execute(execCtx, q)
			if r.Status != "cancelled" && r.Status != "error" {
				s.cache.put(q.key, r)
				if s.cfg.CacheSize > 0 {
					s.subsume.insert(q.subKey(), q.args, q.cond, r)
				}
				if q.inst != nil {
					q.inst.track(req, q, r)
				}
			}
			deliver(r)
		})
	})
	if shedded {
		return failResponse(http.StatusTooManyRequests, ErrQueueFull, "queue full")
	}
	if err != nil {
		// This request stopped waiting; the execution may still finish for
		// other waiters (or was cancelled if this was the last one).
		return failResponse(0, ErrCancelled, "%v", err)
	}
	out := *res
	if coalesced {
		out.Provenance = ProvCoalesced
	}
	out.fingerprint = q.fp
	return &out
}

// query is a parsed, compiled request.
type query struct {
	key     queryKey
	m       zen.Queryable // resolved model or instance view (immutable)
	inst    *instance     // nil for registry models
	args    []*core.Node  // m.QueryArgs(), cached
	gen     uint64        // instance generation; 0 for registry models
	cond    *core.Node    // find/findall/verify condition (pre-negated for verify)
	env     zen.RawModel
	timeout time.Duration
	fp      string        // predicate-DAG fingerprint ("" for evaluate)
	span    *obs.TreeSpan // request root span, nil when untraced
}

// subKey is the subsumption world this query compiles into.
func (q *query) subKey() subWorldKey {
	return subWorldKey{model: q.key.model, gen: q.gen, bound: q.key.bound}
}

func (q *query) bound(ctx context.Context, cfg Config) (context.Context, context.CancelFunc) {
	d := q.timeout
	if d == 0 {
		d = cfg.DefaultTimeout
	}
	if cfg.MaxTimeout > 0 && (d == 0 || d > cfg.MaxTimeout) {
		d = cfg.MaxTimeout
	}
	if d == 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// prepare resolves the model and compiles the request into its canonical
// query; the second return is a ready error response when it is invalid.
func (s *Server) prepare(req *Request) (*query, *Response) {
	fail := func(status int, code, format string, args ...any) (*query, *Response) {
		s.errors.Add(1)
		return nil, failResponse(status, code, format, args...)
	}
	var m zen.Queryable
	var gen uint64
	var inst *instance
	if entry, ok := s.models[req.Model]; ok {
		m = entry.queryable()
		if m == nil {
			return fail(http.StatusBadRequest, ErrNotQueryable, "model %q is not queryable", req.Model)
		}
	} else if inst = s.instance(req.Model); inst != nil {
		m, gen = inst.view()
	} else {
		return fail(http.StatusNotFound, ErrUnknownModel, "unknown model %q", req.Model)
	}
	var backend zen.Backend
	switch req.Backend {
	case "", "bdd":
		backend = zen.BDD
	case "sat":
		backend = zen.SAT
	case "portfolio":
		backend = zen.Portfolio
	case "auto":
		backend = zen.Auto
	default:
		return fail(http.StatusBadRequest, ErrUnknownBackend, "unknown backend %q (want bdd, sat, portfolio, or auto)", req.Backend)
	}
	q := &query{
		m:       m,
		inst:    inst,
		args:    m.QueryArgs(),
		gen:     gen,
		timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	}
	q.key = queryKey{model: req.Model, backend: backend, max: req.Max, bound: req.ListBound, gen: gen}
	switch req.Kind {
	case "find", "findall", "verify":
		if req.Kind == "find" {
			q.key.kind, q.key.max = kindFind, 1
		} else if req.Kind == "findall" {
			q.key.kind = kindFindAll
			if q.key.max <= 0 {
				q.key.max = 10
			}
		} else {
			q.key.kind, q.key.max = kindVerify, 1
		}
		if len(req.Predicate) == 0 {
			return fail(http.StatusBadRequest, ErrBadPredicate, "%s query needs a predicate", req.Kind)
		}
		r := &resolver{args: q.args, out: m.QueryOut()}
		cond, err := compilePredicate(req.Predicate, r)
		if err != nil {
			return fail(http.StatusBadRequest, ErrBadPredicate, "%v", err)
		}
		if q.key.kind == kindVerify {
			// A verify searches for a counterexample; valid means none exists.
			cond = zen.Builder().Not(cond)
		}
		q.cond = cond
		q.key.cond = cond
		// Hash-consing makes structurally identical predicates pointer-equal,
		// so the result cache keys on the node address; the fingerprint is
		// the structural hash that also survives process restarts.
		q.fp = fingerprint(cond)
	case "evaluate":
		q.key.kind = kindEvaluate
		env, err := decodeArgs(q.args, req.Args)
		if err != nil {
			return fail(http.StatusBadRequest, ErrBadArgs, "%v", err)
		}
		q.env = env
	default:
		return fail(http.StatusBadRequest, ErrUnknownKind, "unknown kind %q (want find/findall/verify/evaluate)", req.Kind)
	}
	return q, nil
}

// runPooled executes q on the worker pool without cache or coalescing
// (evaluate queries).
func (s *Server) runPooled(ctx context.Context, q *query) *Response {
	done := make(chan *Response, 1)
	ok := s.pool.submit(func() { done <- s.execute(ctx, q) })
	if !ok {
		return failResponse(http.StatusTooManyRequests, ErrQueueFull, "queue full")
	}
	select {
	case res := <-done:
		return res
	case <-ctx.Done():
		// The worker still runs to its own ctx check; nobody reads done
		// (buffered), so it exits cleanly.
		return failResponse(0, ErrCancelled, "%v", ctx.Err())
	}
}

// execute runs the solver for a prepared query. It runs on a worker
// goroutine under the execution context (see flightGroup).
func (s *Server) execute(ctx context.Context, q *query) *Response {
	if s.onExec != nil {
		s.onExec(q.key)
	}
	st := &zen.Stats{}
	opts := []zen.Option{zen.WithBackend(q.key.backend), zen.WithStats(st)}
	if s.cfg.Presolve {
		opts = append(opts, zen.WithPresolve())
	}
	if q.key.backend == zen.Portfolio && s.cfg.PortfolioWorkers > 0 {
		opts = append(opts, zen.WithPortfolioWorkers(s.cfg.PortfolioWorkers))
	}
	if q.span != nil {
		// Parent the solver's analysis span (find/bdd > symeval, solve,
		// decode) under the request root, so the inline trace shows the
		// whole request as one tree.
		opts = append(opts, zen.WithTracer(obs.ChildTracer(q.span)))
	}
	if q.key.bound > 0 {
		opts = append(opts, zen.WithListBound(q.key.bound))
	}
	m := q.m
	args := q.args
	res := &Response{Provenance: ProvCold}
	var err error
	switch q.key.kind {
	case kindFind:
		var model zen.RawModel
		var found bool
		model, found, err = zen.FindRaw(ctx, q.cond, args, opts...)
		if found {
			res.Status, res.Model = "sat", encodeModel(args, model)
		} else {
			res.Status = "unsat"
		}
	case kindFindAll:
		var models []zen.RawModel
		models, err = zen.FindAllRaw(ctx, q.cond, args, q.key.max, opts...)
		res.Status = "unsat"
		if len(models) > 0 {
			res.Status = "sat"
			res.Models = make([]map[string]any, len(models))
			for i, model := range models {
				res.Models[i] = encodeModel(args, model)
			}
		}
	case kindVerify:
		var model zen.RawModel
		var found bool
		model, found, err = zen.FindRaw(ctx, q.cond, args, opts...)
		if found {
			res.Status, res.Model = "invalid", encodeModel(args, model)
		} else {
			res.Status = "valid"
		}
	case kindEvaluate:
		var v any
		out, everr := zen.EvaluateRaw(ctx, m.QueryOut(), q.env)
		if everr == nil {
			v = encodeValue(out)
		}
		err = everr
		res.Status, res.Value = "ok", v
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return failResponse(0, ErrCancelled, "%v", err)
		}
		return failResponse(http.StatusInternalServerError, ErrInternal, "%v", err)
	}
	snap := st.Snapshot()
	res.Counters = &Counters{
		Solves:       snap.Solves,
		SATConflicts: snap.SAT.Conflicts,
		BDDNodes:     snap.BDD.Nodes,
	}
	res.stats = &snap
	res.fingerprint = q.fp
	return res
}

// encodeModel renders a solver model with positional argument keys.
func encodeModel(args []*core.Node, m zen.RawModel) map[string]any {
	out := make(map[string]any, len(args))
	for i, a := range args {
		out[argName(i, len(args))] = encodeValue(m[a.VarID])
	}
	return out
}

func argName(i, n int) string {
	if n == 1 {
		return "in"
	}
	return fmt.Sprintf("in%d", i)
}

// publish folds one finished request into the server counters and the
// process-wide telemetry aggregate, so /debug/zenstats and expvar show
// service activity next to solver activity.
func (s *Server) publish(res *Response) {
	var d obs.ServeStats
	switch res.Status {
	case "shed", "draining":
		s.shed.Add(1)
		d.Shed = 1
	case "cancelled":
		s.queries.Add(1)
		s.cancelled.Add(1)
		d.Queries, d.Cancelled = 1, 1
	case "error":
		s.queries.Add(1)
		s.errors.Add(1)
		d.Queries, d.Errors = 1, 1
	default:
		s.queries.Add(1)
		d.Queries = 1
	}
	switch res.Provenance {
	case ProvCached:
		d.CacheHits = 1
		if res.FromSnapshot {
			d.SnapshotHits = 1
		}
	case ProvSubsumed:
		d.Subsumed = 1
	default:
		if res.Status != "shed" && res.Status != "draining" && res.Status != "error" {
			// The miss counter tracked at lookup time covers flight followers
			// too; here we only mirror into the global aggregate.
			d.CacheMisses = 1
		}
	}
	if res.Coalesced() {
		s.coalesced.Add(1)
		d.Coalesced = 1
	}
	obs.Global().Merge(&obs.Snapshot{Serve: d})
}

// Stats is the service's self-reported state, served on /v1/stats and
// published as the expvar "zenserve".
type Stats struct {
	Queries         int64   `json:"queries"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	CacheLen        int     `json:"cache_len"`
	Subsumed        int64   `json:"subsumed"`
	SnapshotHits    int64   `json:"snapshot_hits"`
	Coalesced       int64   `json:"coalesced"`
	Shed            int64   `json:"shed"`
	Cancelled       int64   `json:"cancelled"`
	Errors          int64   `json:"errors"`
	Updates         int64   `json:"updates"`
	DeltaReused     int64   `json:"delta_reused"`
	DeltaReverified int64   `json:"delta_reverified"`
	Streams         int64   `json:"streams"`
	StreamItems     int64   `json:"stream_items"`
	StreamErrors    int64   `json:"stream_errors"`
	QueueDepth      int     `json:"queue_depth"`
	Workers         int     `json:"workers"`
	P50MS           float64 `json:"p50_ms"`
	P99MS           float64 `json:"p99_ms"`
	Draining        bool    `json:"draining"`
}

// Stats snapshots the service counters. The latency quantiles are
// estimated from the aggregate request histogram (the same one /metrics
// exposes), interpolated within buckets.
func (s *Server) Stats() Stats {
	p50 := s.latAll.Quantile(0.50) * 1000
	p99 := s.latAll.Quantile(0.99) * 1000
	hits, misses := s.cacheHits.Load(), s.cacheMiss.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return Stats{
		Queries:         s.queries.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheHitRate:    rate,
		CacheLen:        s.cache.len(),
		Subsumed:        s.subsumed.Load(),
		SnapshotHits:    s.snapHits.Load(),
		Coalesced:       s.coalesced.Load(),
		Shed:            s.shed.Load(),
		Cancelled:       s.cancelled.Load(),
		Errors:          s.errors.Load(),
		Updates:         s.updates.Load(),
		DeltaReused:     s.deltaReuse.Load(),
		DeltaReverified: s.deltaRerun.Load(),
		Streams:         s.streams.Load(),
		StreamItems:     s.streamItems.Load(),
		StreamErrors:    s.streamErrors.Load(),
		QueueDepth:      s.pool.queued(),
		Workers:         s.cfg.Workers,
		P50MS:           p50,
		P99MS:           p99,
		Draining:        s.draining.Load(),
	}
}

// expvarServer holds the server published as the "zenserve" expvar;
// expvar names are process-global and cannot be republished, so the
// variable reads through this pointer (tests creating several servers
// observe the most recent one).
var (
	expvarServer atomic.Pointer[Server]
	expvarOnce   sync.Once
)

func publishExpvar(s *Server) {
	expvarServer.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("zenserve", expvar.Func(func() any {
			if srv := expvarServer.Load(); srv != nil {
				return srv.Stats()
			}
			return nil
		}))
	})
}
