package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"zen-go/internal/obs"
)

// APIVersion tags every zend response. Agents and CI bots key on it to
// detect envelope changes; bump it only with a compatibility note in
// docs/serve.md.
const APIVersion = "v1"

// Provenance values: how an answer was obtained. They form the contract
// agents use to reason about answer cost and freshness.
const (
	// ProvCold: a solver executed for this request.
	ProvCold = "cold"
	// ProvCached: answered from the result cache (LRU or persisted
	// snapshot) without solver work.
	ProvCached = "cached"
	// ProvCoalesced: answered by another request's in-flight execution
	// (singleflight follower).
	ProvCoalesced = "coalesced"
	// ProvSubsumed: answered by logical implication against a cached
	// entry for a different predicate (see docs/incremental.md).
	ProvSubsumed = "subsumed"
	// ProvDelta: re-verified incrementally by /v1/update, touching only
	// the changed equivalence classes.
	ProvDelta = "delta"
	// ProvBitslice: evaluated by the bitsliced batch engine, 64 inputs
	// per machine-word step (streaming /v1/evaluate).
	ProvBitslice = "bitslice"
	// ProvInterp: evaluated by the scalar interpreter — the streaming
	// endpoint's fallback for models outside the bitslice fragment.
	ProvInterp = "interp"
)

// Stable machine-readable error codes. The message is free-form prose;
// the code is the contract.
const (
	ErrBadRequest      = "bad_request"
	ErrUnknownModel    = "unknown_model"
	ErrNotQueryable    = "not_queryable"
	ErrUnknownBackend  = "unknown_backend"
	ErrBadPredicate    = "bad_predicate"
	ErrBadArgs         = "bad_args"
	ErrUnknownKind     = "unknown_kind"
	ErrBatchTooLarge   = "batch_too_large"
	ErrQueueFull       = "queue_full"
	ErrDraining        = "draining"
	ErrCancelled       = "cancelled"
	ErrInternal        = "internal"
	ErrUnknownInstance = "unknown_instance"
	ErrInstanceExists  = "instance_exists"
	ErrUnknownFamily   = "unknown_family"
	ErrBadRule         = "bad_rule"
	ErrBadDelta        = "bad_delta"
	ErrStreamHeader    = "bad_stream_header"
	ErrStreamItem      = "bad_stream_item"
)

// ErrorInfo is the failure half of the envelope: a stable code plus a
// human-readable message.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Counters reports what an answer cost when it was computed; cached,
// subsumed, and reused answers repeat the original's counters.
type Counters struct {
	// Solves counts solver invocations.
	Solves int64 `json:"solves"`
	// SATConflicts and BDDNodes locate where the solver effort went.
	SATConflicts int64 `json:"sat_conflicts,omitempty"`
	BDDNodes     int64 `json:"bdd_nodes,omitempty"`
}

// Response is the outcome of one query — the versioned envelope shared
// by /v1/query, /v1/batch, and /v1/update results.
type Response struct {
	// APIVersion is the envelope version ("v1").
	APIVersion string `json:"api_version"`
	// RequestID echoes the X-Zen-Request-Id header (generated when the
	// client sent none).
	RequestID string `json:"request_id,omitempty"`
	// Status is the verdict: "sat", "unsat", "valid", "invalid", "ok",
	// "cancelled", "shed", "draining", or "error".
	Status string `json:"verdict"`
	// Provenance records how the answer was obtained; see the Prov*
	// constants. Empty for failed requests.
	Provenance string `json:"provenance,omitempty"`
	// Reused marks an answer whose verdict was transferred untouched by
	// delta re-verification: /v1/update proved the query's footprint is
	// disjoint from the changed equivalence classes.
	Reused bool `json:"reused,omitempty"`
	// FromSnapshot marks a cached answer restored from a persisted BDD
	// snapshot rather than the in-memory LRU.
	FromSnapshot bool `json:"from_snapshot,omitempty"`
	// Model is the witness of a sat find (or the counterexample of an
	// invalid verify), keyed "in" (one argument) or "in0", "in1", ....
	Model map[string]any `json:"model,omitempty"`
	// Models are the findall witnesses.
	Models []map[string]any `json:"models,omitempty"`
	// Value is the evaluate result.
	Value any `json:"value,omitempty"`
	// Predicate echoes the tracked query's predicate in /v1/update
	// results, so agents can correlate each answer without bookkeeping.
	Predicate json.RawMessage `json:"predicate,omitempty"`
	// Counters reports solver cost; nil for failed requests.
	Counters *Counters `json:"counters,omitempty"`
	// ElapsedMS is this request's wall time.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is the query's span tree, present when Request.Trace was set.
	Trace *obs.SpanNode `json:"trace,omitempty"`
	// Err carries the failure detail for cancelled/shed/error verdicts.
	Err *ErrorInfo `json:"error,omitempty"`

	httpStatus int

	// fingerprint identifies the hash-consed predicate DAG ("" for
	// evaluate); stats holds the executing solver's telemetry. Both feed
	// the slow-query log; cached answers repeat the original's stats.
	fingerprint string
	stats       *obs.Snapshot
}

// HTTPStatus returns the HTTP status code the response is served with.
func (r *Response) HTTPStatus() int {
	if r.httpStatus == 0 {
		return http.StatusOK
	}
	return r.httpStatus
}

// Cached reports whether the answer came from the result cache
// (in-memory or snapshot) without new solver work.
func (r *Response) Cached() bool { return r.Provenance == ProvCached }

// Coalesced reports whether the answer was computed by another
// request's execution.
func (r *Response) Coalesced() bool { return r.Provenance == ProvCoalesced }

// SolveCount returns the solver-invocation count, 0 when no counters
// were recorded.
func (r *Response) SolveCount() int64 {
	if r.Counters == nil {
		return 0
	}
	return r.Counters.Solves
}

// ErrText returns the error message, "" when the request succeeded.
func (r *Response) ErrText() string {
	if r.Err == nil {
		return ""
	}
	return r.Err.Message
}

// failResponse builds an error-envelope response.
func failResponse(httpStatus int, code, format string, args ...any) *Response {
	status := "error"
	switch code {
	case ErrQueueFull:
		status = "shed"
	case ErrDraining:
		status = "draining"
	case ErrCancelled:
		status = "cancelled"
	}
	return &Response{
		APIVersion: APIVersion,
		Status:     status,
		Err:        &ErrorInfo{Code: code, Message: fmt.Sprintf(format, args...)},
		httpStatus: httpStatus,
	}
}
