// Package serve is the verification service behind cmd/zend: it exposes
// the zen.RegisterModel registry over HTTP/JSON, running Find, FindAll,
// Verify, and Evaluate queries against named models on a bounded worker
// pool with per-request deadlines, an LRU result cache, singleflight
// deduplication of identical in-flight queries, and load shedding when
// the queue is full.
//
// Queries never see Go types: predicates arrive as a small JSON AST,
// compile to DAG nodes in the global hash-consed builder (so structurally
// identical predicates are pointer-identical, which is what the cache is
// keyed on), and run through zen's raw query layer. docs/serve.md
// documents the encoding.
package serve

import (
	"encoding/json"
	"fmt"
	"strconv"

	"zen-go/internal/core"
	"zen-go/internal/interp"
)

// encodeValue renders a concrete value as its JSON shape: booleans as
// booleans, bitvectors as numbers (signed types as their signed reading),
// objects as {field: value}, lists as arrays.
func encodeValue(v *interp.Value) any {
	switch v.Type.Kind {
	case core.KindBool:
		return v.B
	case core.KindBV:
		if v.Type.Signed {
			return v.Type.ToSigned(v.U)
		}
		return v.U
	case core.KindObject:
		m := make(map[string]any, len(v.Fields))
		for i, f := range v.Fields {
			m[v.Type.Fields[i].Name] = encodeValue(f)
		}
		return m
	case core.KindList:
		out := make([]any, len(v.Elems))
		for i, e := range v.Elems {
			out[i] = encodeValue(e)
		}
		return out
	}
	return nil
}

// decodeValue parses a JSON value against an expected type. Numbers are
// read as exact decimals, so full-width uint64 values survive the trip.
func decodeValue(t *core.Type, raw json.RawMessage) (*interp.Value, error) {
	switch t.Kind {
	case core.KindBool:
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, fmt.Errorf("want a %s, got %s", t, raw)
		}
		return interp.Bool(b), nil
	case core.KindBV:
		var num json.Number
		if err := json.Unmarshal(raw, &num); err != nil {
			return nil, fmt.Errorf("want a %s number, got %s", t, raw)
		}
		u, err := parseBV(t, num.String())
		if err != nil {
			return nil, err
		}
		return interp.BV(t, u), nil
	case core.KindObject:
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(raw, &fields); err != nil {
			return nil, fmt.Errorf("want a %s object, got %s", t, raw)
		}
		v := &interp.Value{Type: t, Fields: make([]*interp.Value, len(t.Fields))}
		for i, f := range t.Fields {
			fraw, ok := fields[f.Name]
			if !ok {
				return nil, fmt.Errorf("object %s: missing field %q", t, f.Name)
			}
			fv, err := decodeValue(f.Type, fraw)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", f.Name, err)
			}
			v.Fields[i] = fv
			delete(fields, f.Name)
		}
		for name := range fields {
			return nil, fmt.Errorf("object %s: unknown field %q", t, name)
		}
		return v, nil
	case core.KindList:
		var elems []json.RawMessage
		if err := json.Unmarshal(raw, &elems); err != nil {
			return nil, fmt.Errorf("want a %s array, got %s", t, raw)
		}
		v := &interp.Value{Type: t, Elems: make([]*interp.Value, len(elems))}
		for i, eraw := range elems {
			ev, err := decodeValue(t.Elem, eraw)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			v.Elems[i] = ev
		}
		return v, nil
	}
	return nil, fmt.Errorf("cannot decode values of type %s", t)
}

// parseBV parses a decimal literal into the raw bits of a bitvector type,
// rejecting values outside the type's range instead of silently wrapping.
func parseBV(t *core.Type, s string) (uint64, error) {
	if t.Signed {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("want a %s integer, got %q", t, s)
		}
		u := t.Mask(uint64(n))
		if t.ToSigned(u) != n {
			return 0, fmt.Errorf("%s out of range for %s", s, t)
		}
		return u, nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("want a %s integer, got %q", t, s)
	}
	if t.Mask(n) != n {
		return 0, fmt.Errorf("%s out of range for %s", s, t)
	}
	return n, nil
}

// typeDesc renders a type for the /v1/models listing.
func typeDesc(t *core.Type) any {
	switch t.Kind {
	case core.KindBool:
		return "bool"
	case core.KindBV:
		return t.String()
	case core.KindObject:
		fields := make([]map[string]any, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = map[string]any{"name": f.Name, "type": typeDesc(f.Type)}
		}
		d := map[string]any{"kind": "object", "fields": fields}
		if t.TypeName != "" {
			d["name"] = t.TypeName
		}
		return d
	case core.KindList:
		return map[string]any{"kind": "list", "elem": typeDesc(t.Elem)}
	}
	return "unknown"
}
