package serve

import (
	"io"
	"net/http"

	"zen-go/internal/obs"
)

// handleMetrics serves GET /metrics in Prometheus text exposition
// format: the process-wide solver aggregate plus the service's own
// counters, gauges, and latency histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

// WriteMetrics renders the full scrape document. Exposed apart from the
// handler so `zend -check-metrics` and tests can lint the output without
// a listener.
func (s *Server) WriteMetrics(w io.Writer) error {
	m := obs.NewMetricsWriter(w)
	obs.WriteSnapshotMetrics(m, obs.Global().Snapshot())

	st := s.Stats()
	counter := func(name, help string, v int64) {
		m.Family(name, "counter", help)
		m.Sample("", nil, float64(v))
	}
	gauge := func(name, help string, v float64) {
		m.Family(name, "gauge", help)
		m.Sample("", nil, v)
	}
	counter("zen_serve_queries_total", "Queries accepted (including cancelled and failed).", st.Queries)
	counter("zen_serve_cache_hits_total", "Result-cache hits.", st.CacheHits)
	counter("zen_serve_cache_misses_total", "Result-cache misses.", st.CacheMisses)
	counter("zen_serve_cache_subsumed_total", "Queries answered by implication from a cached result.", st.Subsumed)
	counter("zen_serve_cache_snapshot_hits_total", "Cache hits served from a persisted snapshot.", st.SnapshotHits)
	counter("zen_serve_coalesced_total", "Queries answered by another request's in-flight execution.", st.Coalesced)
	counter("zen_serve_shed_total", "Queries shed by queue overflow or drain.", st.Shed)
	counter("zen_serve_cancelled_total", "Queries cancelled by deadline or disconnect.", st.Cancelled)
	counter("zen_serve_errors_total", "Queries that failed.", st.Errors)
	counter("zen_serve_updates_total", "Delta updates applied to model instances.", st.Updates)
	counter("zen_serve_streams_total", "Streaming /v1/evaluate requests accepted.", st.Streams)
	counter("zen_serve_stream_items_total", "Inputs consumed by streaming /v1/evaluate.", st.StreamItems)
	counter("zen_serve_stream_errors_total", "Streaming inputs answered with an in-slot error.", st.StreamErrors)
	counter("zen_serve_delta_reused_total", "Tracked queries answered from cache across an update.", st.DeltaReused)
	counter("zen_serve_delta_reverified_total", "Tracked queries re-verified after an update.", st.DeltaReverified)
	gauge("zen_serve_cache_entries", "Result-cache occupancy.", float64(st.CacheLen))
	gauge("zen_serve_queue_depth", "Executions waiting for a worker.", float64(st.QueueDepth))
	gauge("zen_serve_workers", "Configured worker count.", float64(st.Workers))
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	gauge("zen_serve_draining", "1 while the server drains for shutdown.", draining)

	m.Family("zen_serve_request_seconds", "histogram", "Request wall time, all queries.")
	m.Histogram(nil, s.latAll.Snapshot())

	m.Family("zen_serve_model_request_seconds", "histogram", "Request wall time by model, backend, and verdict.")
	for _, series := range s.latVec.Snapshot() {
		m.Histogram([][2]string{
			{"model", series.Values[0]},
			{"backend", series.Values[1]},
			{"verdict", series.Values[2]},
		}, series.Hist)
	}
	return m.Err()
}
