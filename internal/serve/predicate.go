package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"zen-go/internal/core"
	"zen-go/zen"
)

// predJSON is the predicate AST of a query: a boolean combination of
// comparisons over paths into the model's arguments and result. Exactly
// one field must be set per node.
//
//	{"all": [p, ...]}                          conjunction
//	{"any": [p, ...]}                          disjunction
//	{"not": p}                                 negation
//	{"cmp": {"lhs": t, "op": "eq", "rhs": t}}  comparison
//	{"ref": "out.HasValue"}                    boolean path used directly
type predJSON struct {
	All []predJSON `json:"all,omitempty"`
	Any []predJSON `json:"any,omitempty"`
	Not *predJSON  `json:"not,omitempty"`
	Cmp *cmpJSON   `json:"cmp,omitempty"`
	Ref string     `json:"ref,omitempty"`
}

// cmpJSON compares two terms; op is one of eq, ne, lt, le, gt, ge.
// Ordering follows the signedness of the referenced type.
type cmpJSON struct {
	Lhs termJSON `json:"lhs"`
	Op  string   `json:"op"`
	Rhs termJSON `json:"rhs"`
}

// termJSON is a comparison operand: a path reference or a literal. A
// literal's type is taken from the ref on the other side, so at least one
// side of every comparison must be a ref.
type termJSON struct {
	Ref string          `json:"ref,omitempty"`
	Lit json.RawMessage `json:"lit,omitempty"`
}

// resolver maps path references onto a model's DAG. Bases are "out" and
// "in" (or "in0", "in1", ... positionally); segments after a dot select
// object fields by name.
type resolver struct {
	args []*core.Node
	out  *core.Node
}

func (r *resolver) resolve(path string) (*core.Node, error) {
	segs := strings.Split(path, ".")
	var n *core.Node
	switch base := segs[0]; {
	case base == "out":
		n = r.out
	case base == "in" && len(r.args) == 1:
		n = r.args[0]
	case strings.HasPrefix(base, "in"):
		i, err := strconv.Atoi(base[2:])
		if err != nil || i < 0 || i >= len(r.args) {
			return nil, fmt.Errorf("unknown ref base %q (model has %d arguments)", base, len(r.args))
		}
		n = r.args[i]
	default:
		return nil, fmt.Errorf("unknown ref base %q (want \"out\", \"in\", or \"inN\")", base)
	}
	b := zen.Builder()
	for _, seg := range segs[1:] {
		if n.Type.Kind != core.KindObject {
			return nil, fmt.Errorf("ref %q: %s is not an object", path, n.Type)
		}
		idx := -1
		for i, f := range n.Type.Fields {
			if f.Name == seg {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("ref %q: type %s has no field %q", path, n.Type, seg)
		}
		n = b.GetField(n, idx)
	}
	return n, nil
}

// compilePredicate builds the boolean DAG of a JSON predicate against a
// model. The builder hash-conses, so structurally identical predicates —
// however their JSON was formatted — compile to the same node pointer;
// that pointer is the query's cache fingerprint.
func compilePredicate(raw json.RawMessage, r *resolver) (n *core.Node, err error) {
	// Builder constructors panic on type mismatches (comparing a bool to a
	// list, ...); surface those as request errors, not a dead worker.
	defer func() {
		if rec := recover(); rec != nil {
			n, err = nil, fmt.Errorf("predicate does not type-check: %v", rec)
		}
	}()
	var p predJSON
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("predicate: %w", err)
	}
	return compilePred(&p, r)
}

func compilePred(p *predJSON, r *resolver) (*core.Node, error) {
	b := zen.Builder()
	set := 0
	if p.All != nil {
		set++
	}
	if p.Any != nil {
		set++
	}
	if p.Not != nil {
		set++
	}
	if p.Cmp != nil {
		set++
	}
	if p.Ref != "" {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("predicate node must set exactly one of all/any/not/cmp/ref")
	}
	switch {
	case p.All != nil:
		n := b.BoolConst(true)
		for i := range p.All {
			k, err := compilePred(&p.All[i], r)
			if err != nil {
				return nil, err
			}
			n = b.And(n, k)
		}
		return n, nil
	case p.Any != nil:
		n := b.BoolConst(false)
		for i := range p.Any {
			k, err := compilePred(&p.Any[i], r)
			if err != nil {
				return nil, err
			}
			n = b.Or(n, k)
		}
		return n, nil
	case p.Not != nil:
		k, err := compilePred(p.Not, r)
		if err != nil {
			return nil, err
		}
		return b.Not(k), nil
	case p.Ref != "":
		n, err := r.resolve(p.Ref)
		if err != nil {
			return nil, err
		}
		if n.Type.Kind != core.KindBool {
			return nil, fmt.Errorf("ref %q used as a predicate but has type %s", p.Ref, n.Type)
		}
		return n, nil
	}
	return compileCmp(p.Cmp, r)
}

func compileCmp(c *cmpJSON, r *resolver) (*core.Node, error) {
	lhs, rhs, err := resolveOperands(c, r)
	if err != nil {
		return nil, err
	}
	b := zen.Builder()
	switch c.Op {
	case "eq":
		return b.Eq(lhs, rhs), nil
	case "ne":
		return b.Not(b.Eq(lhs, rhs)), nil
	case "lt":
		return b.Lt(lhs, rhs), nil
	case "le":
		return b.Or(b.Lt(lhs, rhs), b.Eq(lhs, rhs)), nil
	case "gt":
		return b.Lt(rhs, lhs), nil
	case "ge":
		return b.Not(b.Lt(lhs, rhs)), nil
	}
	return nil, fmt.Errorf("unknown comparison op %q (want eq/ne/lt/le/gt/ge)", c.Op)
}

// resolveOperands resolves both sides of a comparison, typing any literal
// side by the ref side.
func resolveOperands(c *cmpJSON, r *resolver) (lhs, rhs *core.Node, err error) {
	if c.Lhs.Ref != "" {
		if lhs, err = r.resolve(c.Lhs.Ref); err != nil {
			return nil, nil, err
		}
	}
	if c.Rhs.Ref != "" {
		if rhs, err = r.resolve(c.Rhs.Ref); err != nil {
			return nil, nil, err
		}
	}
	if lhs == nil && rhs == nil {
		return nil, nil, fmt.Errorf("cmp: at least one side must be a ref (literals have no type of their own)")
	}
	if lhs == nil {
		if lhs, err = literal(rhs.Type, c.Lhs.Lit); err != nil {
			return nil, nil, err
		}
	}
	if rhs == nil {
		if rhs, err = literal(lhs.Type, c.Rhs.Lit); err != nil {
			return nil, nil, err
		}
	}
	return lhs, rhs, nil
}

// literal decodes a JSON literal at the given type and lifts it into the
// global builder as a constant DAG.
func literal(t *core.Type, raw json.RawMessage) (*core.Node, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("cmp term must set ref or lit")
	}
	v, err := decodeValue(t, raw)
	if err != nil {
		return nil, fmt.Errorf("lit: %w", err)
	}
	return zen.LiftRaw(v), nil
}

// decodeArgs parses the concrete argument values of an evaluate query.
func decodeArgs(args []*core.Node, raws []json.RawMessage) (zen.RawModel, error) {
	if len(raws) != len(args) {
		return nil, fmt.Errorf("model takes %d arguments, got %d", len(args), len(raws))
	}
	env := make(zen.RawModel, len(args))
	for i, a := range args {
		v, err := decodeValue(a.Type, raws[i])
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i, err)
		}
		env[a.VarID] = v
	}
	return env, nil
}
