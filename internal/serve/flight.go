package serve

import (
	"context"
	"sync"
)

// flightGroup deduplicates identical in-flight queries: the first request
// for a key becomes the leader and runs the solver; requests arriving
// while it runs become followers and share the leader's answer.
//
// Cancellation is refcounted. The execution runs under its own context,
// detached from any single client's: each waiting request (leader
// included) holds a reference, a request whose context dies drops its
// reference and leaves, and when the last reference is gone the execution
// context is cancelled so the solver stops. A follower therefore cannot
// be killed by the leader's client hanging up, and an abandoned query
// does not burn a worker at 100% CPU with nobody listening.
type flightGroup struct {
	mu sync.Mutex
	m  map[queryKey]*flightCall
}

type flightCall struct {
	done    chan struct{} // closed when res is set
	res     *Response
	waiters int
	cancel  context.CancelFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[queryKey]*flightCall)}
}

// do runs exec for key, coalescing with an identical in-flight call.
// start launches the execution (on the worker pool); it returns false
// when the work could not be enqueued (shed), in which case do reports
// shed=true. The returned coalesced flag is true when this request waited
// on a call started by an earlier one.
func (g *flightGroup) do(ctx context.Context, key queryKey,
	start func(execCtx context.Context, deliver func(*Response)) bool,
) (res *Response, coalesced, shed bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return g.wait(ctx, key, c, true)
	}
	execCtx, cancel := context.WithCancel(context.Background())
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.m[key] = c
	g.mu.Unlock()

	deliver := func(r *Response) {
		g.mu.Lock()
		c.res = r
		delete(g.m, key) // later identical queries start fresh (or hit the cache)
		g.mu.Unlock()
		close(c.done)
		cancel()
	}
	if !start(execCtx, deliver) {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		cancel()
		return nil, false, true, nil
	}
	return g.wait(ctx, key, c, false)
}

// wait blocks until the call completes or the request's own context dies,
// dropping the reference in the latter case.
func (g *flightGroup) wait(ctx context.Context, key queryKey, c *flightCall, coalesced bool) (*Response, bool, bool, error) {
	select {
	case <-c.done:
		return c.res, coalesced, false, nil
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		abandon := c.waiters == 0
		if abandon {
			// Nobody is listening anymore: stop the solver. The entry stays
			// in the map until deliver runs, so a new identical request
			// arriving in this window waits for the cancelled result rather
			// than racing a second execution; it will observe the
			// cancellation and can simply retry.
		}
		g.mu.Unlock()
		if abandon {
			c.cancel()
		}
		return nil, coalesced, false, ctx.Err()
	}
}
