package obs

import "time"

// Reporter is implemented by solver backends that can dump their internal
// counters into a Snapshot (see backends.BDD and backends.SAT).
type Reporter interface {
	ReportInto(*Snapshot)
}

// Rec records one analysis: instrumentation sites create one with Begin,
// time their phases with Phase, harvest backend counters with
// ReportBackend, and close it with End, which merges the record into the
// attached Stats (if any) and the process-wide Global aggregate.
//
// A nil *Rec is valid and inert, so callers on fully-disabled fast paths
// may skip Begin entirely and still call the methods.
type Rec struct {
	out     *Stats
	span    Span
	backend string
	s       Snapshot
}

// Begin opens a record for one analysis on the named backend. out may be
// nil (telemetry still flows to the Global aggregate); tr may be nil (no
// span is opened).
func Begin(out *Stats, tr Tracer, backend, analysis string) *Rec {
	r := &Rec{out: out, backend: backend}
	r.s.Analyses = 1
	if tr != nil {
		r.span = tr.StartSpan(analysis + "/" + backend)
	}
	return r
}

var noop = func() {}

// Phase starts timing the named phase and returns the function that stops
// it. Phases may recur within one analysis (e.g. one solve per model in
// FindAll); their durations and counts accumulate. With a tracer attached
// each phase occurrence is a child span of the analysis span, so a
// TreeTracer sees the real nesting (find/bdd > symeval, solve, decode).
func (r *Rec) Phase(name string) func() {
	if r == nil {
		return noop
	}
	var child Span
	if r.span != nil {
		child = r.span.Child(name)
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		r.s.addPhase(name, d, 1)
		if child != nil {
			child.End()
		}
	}
}

// SetAttr attaches an attribute to the analysis span (a no-op without a
// tracer).
func (r *Rec) SetAttr(key string, value any) {
	if r != nil && r.span != nil {
		r.span.SetAttr(key, value)
	}
}

// Event emits an ad-hoc span event (a no-op without a tracer).
func (r *Rec) Event(name string, args ...any) {
	if r != nil && r.span != nil {
		r.span.Event(name, args...)
	}
}

// SetDAG records the expression-DAG measurements of the analysis.
func (r *Rec) SetDAG(nodes, depth, vars int) {
	if r == nil {
		return
	}
	r.s.DAG = DAGStats{Nodes: int64(nodes), Depth: int64(depth), Vars: int64(vars)}
}

// CountSolve records one solver invocation and its outcome.
func (r *Rec) CountSolve(sat bool) {
	if r == nil {
		return
	}
	r.s.Solves++
	if sat {
		r.s.Sat++
	}
}

// ReportBackend harvests internal counters from a backend that implements
// Reporter (a no-op for backends that don't).
func (r *Rec) ReportBackend(alg any) {
	if r == nil {
		return
	}
	if rep, ok := alg.(Reporter); ok {
		rep.ReportInto(&r.s)
	}
}

// AddBDD accumulates BDD counters (used by the state-set world, which
// harvests deltas from its long-lived manager).
func (r *Rec) AddBDD(d BDDStats) {
	if r == nil {
		return
	}
	r.s.BDD.Nodes += d.Nodes
	r.s.BDD.CacheHits += d.CacheHits
	r.s.BDD.CacheMisses += d.CacheMisses
	r.s.BDD.UniqueHits += d.UniqueHits
}

// AddCompile accumulates model-compilation counters.
func (r *Rec) AddCompile(d CompileStats) {
	if r == nil {
		return
	}
	r.s.Compile.Compiles += d.Compiles
	r.s.Compile.Instructions += d.Instructions
	r.s.Compile.Registers += d.Registers
}

// AddBitslice accumulates batch-evaluation counters.
func (r *Rec) AddBitslice(d BitsliceStats) {
	if r == nil {
		return
	}
	r.s.Bitslice.Plans += d.Plans
	r.s.Bitslice.PlanOps += d.PlanOps
	r.s.Bitslice.PlanRegs += d.PlanRegs
	r.s.Bitslice.Batches += d.Batches
	r.s.Bitslice.Packets += d.Packets
	r.s.Bitslice.Fallbacks += d.Fallbacks
}

// AddStateSet accumulates state-set transformer counters.
func (r *Rec) AddStateSet(d StateSetStats) {
	if r == nil {
		return
	}
	r.s.StateSet.Transformers += d.Transformers
	r.s.StateSet.FreshSpaces += d.FreshSpaces
	r.s.StateSet.Forwards += d.Forwards
	r.s.StateSet.Reverses += d.Reverses
}

// AddFuzz accumulates differential-fuzzing campaign counters.
func (r *Rec) AddFuzz(d FuzzStats) {
	if r == nil {
		return
	}
	r.s.Fuzz.Execs += d.Execs
	r.s.Fuzz.Divergences += d.Divergences
	r.s.Fuzz.Shrinks += d.Shrinks
}

// AddPortfolio accumulates solver-portfolio race counters.
func (r *Rec) AddPortfolio(d PortfolioStats) {
	if r == nil {
		return
	}
	r.s.Portfolio.Races += d.Races
	for k, v := range d.WinsBy {
		if r.s.Portfolio.WinsBy == nil {
			r.s.Portfolio.WinsBy = make(map[string]int64)
		}
		r.s.Portfolio.WinsBy[k] += v
	}
	r.s.Portfolio.ClausesShared += d.ClausesShared
	r.s.Portfolio.ClausesImported += d.ClausesImported
	r.s.Portfolio.LoserAborts += d.LoserAborts
	r.s.Portfolio.LoserAbortNs += d.LoserAbortNs
}

// AddAbsint accumulates abstract-interpretation presolve counters.
func (r *Rec) AddAbsint(d AbsintStats) {
	if r == nil {
		return
	}
	r.s.Absint.Presolves += d.Presolves
	r.s.Absint.NodesBefore += d.NodesBefore
	r.s.Absint.NodesAfter += d.NodesAfter
	r.s.Absint.Folds += d.Folds
	r.s.Absint.ComparesDecided += d.ComparesDecided
	r.s.Absint.BranchesPruned += d.BranchesPruned
	r.s.Absint.SlicedInputs += d.SlicedInputs
	for k, v := range d.AutoPicks {
		if r.s.Absint.AutoPicks == nil {
			r.s.Absint.AutoPicks = make(map[string]int64)
		}
		r.s.Absint.AutoPicks[k] += v
	}
}

// AddLint accumulates static-analyzer counters.
func (r *Rec) AddLint(d LintStats) {
	if r == nil {
		return
	}
	r.s.Lint.Models += d.Models
	r.s.Lint.Findings += d.Findings
	r.s.Lint.Suppressed += d.Suppressed
}

// End closes the span and merges the record into the attached Stats and
// the Global aggregate. End must be called exactly once. Before closing,
// the harvested solver counters are attached to the span as attributes,
// so a trace viewer shows what each analysis cost without a Stats.
func (r *Rec) End() {
	if r == nil {
		return
	}
	if r.span != nil {
		r.span.SetAttr("backend", r.backend)
		if r.s.Solves > 0 {
			r.span.SetAttr("solves", r.s.Solves)
			r.span.SetAttr("sat", r.s.Sat)
		}
		if r.s.BDD.Nodes > 0 {
			r.span.SetAttr("bdd_nodes", r.s.BDD.Nodes)
		}
		if r.s.SAT.Clauses > 0 {
			r.span.SetAttr("sat_clauses", r.s.SAT.Clauses)
			r.span.SetAttr("sat_conflicts", r.s.SAT.Conflicts)
		}
		if r.s.DAG.Nodes > 0 {
			r.span.SetAttr("dag_nodes", r.s.DAG.Nodes)
		}
		if r.s.Portfolio.Races > 0 {
			for k, v := range r.s.Portfolio.WinsBy {
				if v > 0 {
					r.span.SetAttr("portfolio_winner", k)
				}
			}
			r.span.SetAttr("portfolio_loser_abort_ns", r.s.Portfolio.LoserAbortNs)
			r.span.SetAttr("portfolio_clauses_shared", r.s.Portfolio.ClausesShared)
			r.span.SetAttr("portfolio_clauses_imported", r.s.Portfolio.ClausesImported)
		}
		r.span.End()
		r.span = nil
	}
	if r.backend != "" {
		r.s.AnalysesBy = map[string]int64{r.backend: 1}
	}
	global.Merge(&r.s)
	if r.out != nil && r.out != &global {
		r.out.Merge(&r.s)
	}
}
