// Package obs is Zen's zero-dependency telemetry layer: counters, phase
// timers and pluggable tracing for every analysis backend.
//
// The paper's architecture routes one model through many solvers
// (interpretation, BDD, SAT, state sets, compilation), so performance work
// needs visibility into what each backend actually did — how large the
// expression DAG was, how the analysis time split across DAG build /
// symbolic evaluation / solving / decoding, how many BDD nodes were
// allocated and with what cache hit rate, how many clauses, decisions and
// conflicts the CDCL search spent. This package is the single vocabulary
// for those measurements:
//
//   - Snapshot is a plain, copyable record of counters and phase timings.
//   - Stats is a mutex-guarded accumulator of Snapshots; analyses attach
//     one via zen.WithStats and read it back after the call.
//   - Tracer/Span is the pluggable tracing hook: each analysis opens a
//     span and emits one event per phase.
//   - Rec is the per-analysis recorder used by instrumentation sites; it
//     merges into the attached Stats and the process-wide Global aggregate
//     when closed.
//
// Instrumentation is designed to cost nothing when unobserved: per-
// operation hot paths (BDD mk/Ite, SAT propagation) keep their own cheap
// native counters that are only harvested once per analysis, and the
// expensive DAG measurement runs only when a Stats is attached. The Global
// aggregate is exposed to expvar and an optional /debug/zenstats endpoint
// (see http.go).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DAGStats summarizes the expression DAG of an analysis, as computed by
// core.Measure. Merging keeps the maximum (the largest DAG analyzed).
type DAGStats struct {
	Nodes int64 `json:"nodes"`
	Depth int64 `json:"depth"`
	Vars  int64 `json:"vars"`
}

// BDDStats are cumulative counters harvested from BDD managers.
type BDDStats struct {
	// Nodes is the number of allocated nonterminal BDD nodes.
	Nodes int64 `json:"nodes"`
	// CacheHits and CacheMisses count lookups in the operation
	// (ITE/quantification) memo cache.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// UniqueHits counts unique-table lookups that found an existing node
	// (the complement of Nodes, which counts the misses that allocated).
	UniqueHits int64 `json:"unique_hits"`
}

// CacheHitRate returns the fraction of operation-cache lookups that hit,
// or 0 when no lookups were recorded.
func (b BDDStats) CacheHitRate() float64 {
	total := b.CacheHits + b.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(b.CacheHits) / float64(total)
}

// UniqueHitRate returns the fraction of unique-table lookups that found an
// existing node, or 0 when no lookups were recorded.
func (b BDDStats) UniqueHitRate() float64 {
	total := b.UniqueHits + b.Nodes
	if total == 0 {
		return 0
	}
	return float64(b.UniqueHits) / float64(total)
}

// SATStats are cumulative counters harvested from CDCL solvers.
type SATStats struct {
	Vars         int64 `json:"vars"`
	Clauses      int64 `json:"clauses"`
	Learned      int64 `json:"learned"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Conflicts    int64 `json:"conflicts"`
	Restarts     int64 `json:"restarts"`
	// Imported and Exported count clauses moved through the portfolio's
	// clause exchange (zero outside portfolio runs).
	Imported int64 `json:"imported,omitempty"`
	Exported int64 `json:"exported,omitempty"`
}

// PortfolioStats count solver-portfolio activity (internal/portfolio):
// strategy races, their winners, clause sharing between SAT workers, and
// how quickly race losers acknowledged cancellation.
type PortfolioStats struct {
	// Races counts portfolio queries (each races >= 2 strategies).
	Races int64 `json:"races"`
	// WinsBy breaks Races down by winning strategy ("bdd", "sat").
	WinsBy map[string]int64 `json:"wins_by,omitempty"`
	// ClausesShared and ClausesImported count clauses exported to and
	// accepted from the shared exchange across all SAT workers.
	ClausesShared   int64 `json:"clauses_shared"`
	ClausesImported int64 `json:"clauses_imported"`
	// LoserAborts counts losing strategies torn down; LoserAbortNs is the
	// accumulated wall time between the winner's answer and the last
	// loser's exit (cancellation latency).
	LoserAborts  int64 `json:"loser_aborts"`
	LoserAbortNs int64 `json:"loser_abort_ns"`
}

// CompileStats count model compilations (§8).
type CompileStats struct {
	Compiles     int64 `json:"compiles"`
	Instructions int64 `json:"instructions"`
	Registers    int64 `json:"registers"`
}

// BitsliceStats count batch-evaluation activity (internal/bitslice):
// plans compiled, batches executed, packets pushed through them, and
// scalar fallbacks for models outside the bitslice fragment.
type BitsliceStats struct {
	// Plans counts bitslice plan compilations; PlanOps and PlanRegs
	// accumulate their instruction and register counts.
	Plans    int64 `json:"plans"`
	PlanOps  int64 `json:"plan_ops"`
	PlanRegs int64 `json:"plan_regs"`
	// Batches counts 64-lane plan executions; Packets counts the inputs
	// evaluated through them (the last batch of a call may be partial).
	Batches int64 `json:"batches"`
	Packets int64 `json:"packets"`
	// Fallbacks counts batch calls served by the scalar path because the
	// model uses lists.
	Fallbacks int64 `json:"fallbacks"`
}

// StateSetStats count state-set transformer activity (§4/§6).
type StateSetStats struct {
	Transformers int64 `json:"transformers"`
	FreshSpaces  int64 `json:"fresh_spaces"`
	Forwards     int64 `json:"forwards"`
	Reverses     int64 `json:"reverses"`
}

// FuzzStats count differential-fuzzing campaign activity (internal/fuzz).
type FuzzStats struct {
	// Execs counts generated queries pushed through the full oracle.
	Execs int64 `json:"execs"`
	// Divergences counts oracle failures (cross-backend disagreements).
	Divergences int64 `json:"divergences"`
	// Shrinks counts oracle re-runs spent minimizing divergences.
	Shrinks int64 `json:"shrinks"`
}

// ServeStats count verification-service activity (internal/serve): query
// traffic, result-cache effectiveness, singleflight coalescing, and load
// shedding. Latency quantiles live in the server itself (they are not
// additive); these counters are what merges meaningfully across
// processes and snapshots.
type ServeStats struct {
	// Queries counts queries accepted for execution (cache hits and
	// coalesced waits included; shed requests are not).
	Queries int64 `json:"queries"`
	// CacheHits and CacheMisses count result-cache lookups for cacheable
	// queries.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Subsumed counts queries answered by implication from a cached
	// result (the subsumption index), without a solve.
	Subsumed int64 `json:"subsumed"`
	// SnapshotHits counts cache hits served from a persisted snapshot
	// written by a previous process.
	SnapshotHits int64 `json:"snapshot_hits"`
	// Coalesced counts queries that waited on an identical in-flight
	// query instead of executing (singleflight followers).
	Coalesced int64 `json:"coalesced"`
	// Shed counts queries rejected because the queue was full or the
	// server was draining.
	Shed int64 `json:"shed"`
	// Cancelled counts queries cut by deadline or client cancellation.
	Cancelled int64 `json:"cancelled"`
	// Errors counts queries that failed to parse or execute.
	Errors int64 `json:"errors"`
	// Updates counts /v1/update delta applications against model
	// instances; DeltaReused and DeltaReverified count the tracked
	// queries each update answered from cache versus re-verified.
	Updates         int64 `json:"updates"`
	DeltaReused     int64 `json:"delta_reused"`
	DeltaReverified int64 `json:"delta_reverified"`
}

// CacheHitRate returns the fraction of result-cache lookups that hit, or
// 0 when no lookups were recorded.
func (s ServeStats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// AbsintStats count abstract-interpretation presolve activity
// (internal/absint): how much the simplifier removed before a solver ran,
// and what the static auto-backend predictor picked.
type AbsintStats struct {
	// Presolves counts Simplify runs on query DAGs.
	Presolves int64 `json:"presolves"`
	// NodesBefore and NodesAfter accumulate DAG sizes across presolves;
	// their ratio is the average shrink factor.
	NodesBefore int64 `json:"nodes_before"`
	NodesAfter  int64 `json:"nodes_after"`
	// Folds, ComparesDecided and BranchesPruned count rewrites by kind.
	Folds           int64 `json:"folds"`
	ComparesDecided int64 `json:"compares_decided"`
	BranchesPruned  int64 `json:"branches_pruned"`
	// SlicedInputs counts input variables removed from cones of influence.
	SlicedInputs int64 `json:"sliced_inputs"`
	// AutoPicks breaks backend:auto resolutions down by chosen backend.
	AutoPicks map[string]int64 `json:"auto_picks,omitempty"`
}

// LintStats count static-analyzer activity (internal/lint).
type LintStats struct {
	// Models counts models analyzed.
	Models int64 `json:"models"`
	// Findings counts diagnostics reported (after suppression).
	Findings int64 `json:"findings"`
	// Suppressed counts diagnostics filtered by allow-lists.
	Suppressed int64 `json:"suppressed"`
}

// PhaseTiming is the accumulated wall time of one named analysis phase
// ("build", "symeval", "solve", "decode", ...).
type PhaseTiming struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// Snapshot is a plain, copyable record of telemetry. The zero value is
// empty; snapshots merge additively (except DAG, which keeps the maximum).
type Snapshot struct {
	// Analyses counts completed analyses (Find, Verify, Solve, ...).
	Analyses int64 `json:"analyses"`
	// AnalysesBy breaks Analyses down by backend name ("bdd", "sat",
	// "interp", "compile", "stateset").
	AnalysesBy map[string]int64 `json:"analyses_by,omitempty"`
	// Solves counts solver invocations; Sat counts those that returned a
	// model (FindAll and NextModel solve repeatedly within one analysis).
	Solves int64 `json:"solves"`
	Sat    int64 `json:"sat"`

	Phases    []PhaseTiming  `json:"phases,omitempty"`
	DAG       DAGStats       `json:"dag"`
	BDD       BDDStats       `json:"bdd"`
	SAT       SATStats       `json:"sat_solver"`
	Compile   CompileStats   `json:"compile"`
	Bitslice  BitsliceStats  `json:"bitslice"`
	StateSet  StateSetStats  `json:"stateset"`
	Fuzz      FuzzStats      `json:"fuzz"`
	Lint      LintStats      `json:"lint"`
	Serve     ServeStats     `json:"serve"`
	Portfolio PortfolioStats `json:"portfolio"`
	Absint    AbsintStats    `json:"absint"`
}

// Phase returns the accumulated timing of the named phase.
func (s *Snapshot) Phase(name string) (PhaseTiming, bool) {
	for _, p := range s.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseTiming{}, false
}

func (s *Snapshot) addPhase(name string, d time.Duration, n int64) {
	for i := range s.Phases {
		if s.Phases[i].Name == name {
			s.Phases[i].Count += n
			s.Phases[i].Total += d
			return
		}
	}
	s.Phases = append(s.Phases, PhaseTiming{Name: name, Count: n, Total: d})
}

func (s *Snapshot) merge(o *Snapshot) {
	s.Analyses += o.Analyses
	for k, v := range o.AnalysesBy {
		if s.AnalysesBy == nil {
			s.AnalysesBy = make(map[string]int64)
		}
		s.AnalysesBy[k] += v
	}
	s.Solves += o.Solves
	s.Sat += o.Sat
	for _, p := range o.Phases {
		s.addPhase(p.Name, p.Total, p.Count)
	}
	if o.DAG.Nodes > s.DAG.Nodes {
		s.DAG = o.DAG
	}
	s.BDD.Nodes += o.BDD.Nodes
	s.BDD.CacheHits += o.BDD.CacheHits
	s.BDD.CacheMisses += o.BDD.CacheMisses
	s.BDD.UniqueHits += o.BDD.UniqueHits
	s.SAT.Vars += o.SAT.Vars
	s.SAT.Clauses += o.SAT.Clauses
	s.SAT.Learned += o.SAT.Learned
	s.SAT.Decisions += o.SAT.Decisions
	s.SAT.Propagations += o.SAT.Propagations
	s.SAT.Conflicts += o.SAT.Conflicts
	s.SAT.Restarts += o.SAT.Restarts
	s.SAT.Imported += o.SAT.Imported
	s.SAT.Exported += o.SAT.Exported
	s.Compile.Compiles += o.Compile.Compiles
	s.Compile.Instructions += o.Compile.Instructions
	s.Compile.Registers += o.Compile.Registers
	s.Bitslice.Plans += o.Bitslice.Plans
	s.Bitslice.PlanOps += o.Bitslice.PlanOps
	s.Bitslice.PlanRegs += o.Bitslice.PlanRegs
	s.Bitslice.Batches += o.Bitslice.Batches
	s.Bitslice.Packets += o.Bitslice.Packets
	s.Bitslice.Fallbacks += o.Bitslice.Fallbacks
	s.StateSet.Transformers += o.StateSet.Transformers
	s.StateSet.FreshSpaces += o.StateSet.FreshSpaces
	s.StateSet.Forwards += o.StateSet.Forwards
	s.StateSet.Reverses += o.StateSet.Reverses
	s.Fuzz.Execs += o.Fuzz.Execs
	s.Fuzz.Divergences += o.Fuzz.Divergences
	s.Fuzz.Shrinks += o.Fuzz.Shrinks
	s.Lint.Models += o.Lint.Models
	s.Lint.Findings += o.Lint.Findings
	s.Lint.Suppressed += o.Lint.Suppressed
	s.Serve.Queries += o.Serve.Queries
	s.Serve.CacheHits += o.Serve.CacheHits
	s.Serve.CacheMisses += o.Serve.CacheMisses
	s.Serve.Subsumed += o.Serve.Subsumed
	s.Serve.SnapshotHits += o.Serve.SnapshotHits
	s.Serve.Coalesced += o.Serve.Coalesced
	s.Serve.Shed += o.Serve.Shed
	s.Serve.Cancelled += o.Serve.Cancelled
	s.Serve.Errors += o.Serve.Errors
	s.Serve.Updates += o.Serve.Updates
	s.Serve.DeltaReused += o.Serve.DeltaReused
	s.Serve.DeltaReverified += o.Serve.DeltaReverified
	s.Portfolio.Races += o.Portfolio.Races
	for k, v := range o.Portfolio.WinsBy {
		if s.Portfolio.WinsBy == nil {
			s.Portfolio.WinsBy = make(map[string]int64)
		}
		s.Portfolio.WinsBy[k] += v
	}
	s.Portfolio.ClausesShared += o.Portfolio.ClausesShared
	s.Portfolio.ClausesImported += o.Portfolio.ClausesImported
	s.Portfolio.LoserAborts += o.Portfolio.LoserAborts
	s.Portfolio.LoserAbortNs += o.Portfolio.LoserAbortNs
	s.Absint.Presolves += o.Absint.Presolves
	s.Absint.NodesBefore += o.Absint.NodesBefore
	s.Absint.NodesAfter += o.Absint.NodesAfter
	s.Absint.Folds += o.Absint.Folds
	s.Absint.ComparesDecided += o.Absint.ComparesDecided
	s.Absint.BranchesPruned += o.Absint.BranchesPruned
	s.Absint.SlicedInputs += o.Absint.SlicedInputs
	for k, v := range o.Absint.AutoPicks {
		if s.Absint.AutoPicks == nil {
			s.Absint.AutoPicks = make(map[string]int64)
		}
		s.Absint.AutoPicks[k] += v
	}
}

func (s *Snapshot) clone() Snapshot {
	c := *s
	if s.AnalysesBy != nil {
		c.AnalysesBy = make(map[string]int64, len(s.AnalysesBy))
		for k, v := range s.AnalysesBy {
			c.AnalysesBy[k] = v
		}
	}
	if s.Portfolio.WinsBy != nil {
		c.Portfolio.WinsBy = make(map[string]int64, len(s.Portfolio.WinsBy))
		for k, v := range s.Portfolio.WinsBy {
			c.Portfolio.WinsBy[k] = v
		}
	}
	if s.Absint.AutoPicks != nil {
		c.Absint.AutoPicks = make(map[string]int64, len(s.Absint.AutoPicks))
		for k, v := range s.Absint.AutoPicks {
			c.Absint.AutoPicks[k] = v
		}
	}
	c.Phases = append([]PhaseTiming(nil), s.Phases...)
	return c
}

// String renders the snapshot as a compact human-readable report. Sections
// with no activity are omitted.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "zen stats: %d analyses", s.Analyses)
	if len(s.AnalysesBy) > 0 {
		names := make([]string, 0, len(s.AnalysesBy))
		for k := range s.AnalysesBy {
			names = append(names, k)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, k := range names {
			parts[i] = fmt.Sprintf("%s %d", k, s.AnalysesBy[k])
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, ", %d solves (%d sat)\n", s.Solves, s.Sat)
	if len(s.Phases) > 0 {
		parts := make([]string, len(s.Phases))
		for i, p := range s.Phases {
			parts[i] = fmt.Sprintf("%s %v×%d", p.Name, p.Total.Round(time.Microsecond), p.Count)
		}
		fmt.Fprintf(&b, "  phases:   %s\n", strings.Join(parts, " · "))
	}
	if s.DAG.Nodes > 0 {
		fmt.Fprintf(&b, "  dag:      %d nodes, depth %d, %d vars (largest analyzed)\n",
			s.DAG.Nodes, s.DAG.Depth, s.DAG.Vars)
	}
	if s.BDD.Nodes > 0 || s.BDD.CacheHits+s.BDD.CacheMisses > 0 {
		fmt.Fprintf(&b, "  bdd:      %d nodes, cache %.1f%% hit (%d hits / %d misses), unique-table %.1f%% hit\n",
			s.BDD.Nodes, 100*s.BDD.CacheHitRate(), s.BDD.CacheHits, s.BDD.CacheMisses,
			100*s.BDD.UniqueHitRate())
	}
	if s.SAT.Vars > 0 {
		fmt.Fprintf(&b, "  sat:      %d vars, %d clauses (+%d learned), %d decisions, %d propagations, %d conflicts, %d restarts\n",
			s.SAT.Vars, s.SAT.Clauses, s.SAT.Learned, s.SAT.Decisions,
			s.SAT.Propagations, s.SAT.Conflicts, s.SAT.Restarts)
	}
	if s.Portfolio.Races > 0 {
		fmt.Fprintf(&b, "  portfolio: %d races", s.Portfolio.Races)
		if len(s.Portfolio.WinsBy) > 0 {
			names := make([]string, 0, len(s.Portfolio.WinsBy))
			for k := range s.Portfolio.WinsBy {
				names = append(names, k)
			}
			sort.Strings(names)
			parts := make([]string, len(names))
			for i, k := range names {
				parts[i] = fmt.Sprintf("%s %d", k, s.Portfolio.WinsBy[k])
			}
			fmt.Fprintf(&b, " (wins: %s)", strings.Join(parts, ", "))
		}
		fmt.Fprintf(&b, ", %d clauses shared / %d imported, %d losers aborted in %v total\n",
			s.Portfolio.ClausesShared, s.Portfolio.ClausesImported,
			s.Portfolio.LoserAborts, time.Duration(s.Portfolio.LoserAbortNs).Round(time.Microsecond))
	}
	if s.Absint.Presolves > 0 || len(s.Absint.AutoPicks) > 0 {
		fmt.Fprintf(&b, "  presolve: %d runs, %d→%d nodes, %d folds (%d compares), %d branches pruned, %d inputs sliced",
			s.Absint.Presolves, s.Absint.NodesBefore, s.Absint.NodesAfter,
			s.Absint.Folds, s.Absint.ComparesDecided, s.Absint.BranchesPruned,
			s.Absint.SlicedInputs)
		if len(s.Absint.AutoPicks) > 0 {
			names := make([]string, 0, len(s.Absint.AutoPicks))
			for k := range s.Absint.AutoPicks {
				names = append(names, k)
			}
			sort.Strings(names)
			parts := make([]string, len(names))
			for i, k := range names {
				parts[i] = fmt.Sprintf("%s %d", k, s.Absint.AutoPicks[k])
			}
			fmt.Fprintf(&b, " (auto picks: %s)", strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
	if s.Compile.Compiles > 0 {
		fmt.Fprintf(&b, "  compile:  %d programs, %d instructions, %d registers\n",
			s.Compile.Compiles, s.Compile.Instructions, s.Compile.Registers)
	}
	if s.Bitslice.Batches > 0 || s.Bitslice.Plans > 0 {
		fmt.Fprintf(&b, "  bitslice: %d plans (%d ops, %d regs), %d batches, %d packets, %d fallbacks\n",
			s.Bitslice.Plans, s.Bitslice.PlanOps, s.Bitslice.PlanRegs,
			s.Bitslice.Batches, s.Bitslice.Packets, s.Bitslice.Fallbacks)
	}
	if s.StateSet.Transformers > 0 || s.StateSet.Forwards > 0 || s.StateSet.Reverses > 0 {
		fmt.Fprintf(&b, "  stateset: %d transformers (%d fresh-space), %d forward, %d reverse\n",
			s.StateSet.Transformers, s.StateSet.FreshSpaces,
			s.StateSet.Forwards, s.StateSet.Reverses)
	}
	if s.Fuzz.Execs > 0 {
		fmt.Fprintf(&b, "  fuzz:     %d execs, %d divergences, %d shrink steps\n",
			s.Fuzz.Execs, s.Fuzz.Divergences, s.Fuzz.Shrinks)
	}
	if s.Lint.Models > 0 {
		fmt.Fprintf(&b, "  lint:     %d models, %d findings, %d suppressed\n",
			s.Lint.Models, s.Lint.Findings, s.Lint.Suppressed)
	}
	if s.Serve.Queries > 0 || s.Serve.Shed > 0 {
		fmt.Fprintf(&b, "  serve:    %d queries, cache %.1f%% hit (%d hits / %d misses), %d coalesced, %d shed, %d cancelled, %d errors\n",
			s.Serve.Queries, 100*s.Serve.CacheHitRate(), s.Serve.CacheHits,
			s.Serve.CacheMisses, s.Serve.Coalesced, s.Serve.Shed,
			s.Serve.Cancelled, s.Serve.Errors)
	}
	return b.String()
}

// Stats is a thread-safe accumulator of analysis telemetry. The zero value
// is ready to use; attach one to an analysis with zen.WithStats and read
// it back with Snapshot after the call returns. One Stats may be shared by
// many analyses (and many goroutines); snapshots merge into it.
type Stats struct {
	mu sync.Mutex
	s  Snapshot
}

// Snapshot returns a copy of everything recorded so far. Safe to call
// concurrently with ongoing analyses; nil-safe (returns a zero Snapshot).
func (st *Stats) Snapshot() Snapshot {
	if st == nil {
		return Snapshot{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.s.clone()
}

// Phase returns the accumulated timing of the named phase.
func (st *Stats) Phase(name string) (PhaseTiming, bool) {
	if st == nil {
		return PhaseTiming{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.s.Phase(name)
}

// String renders a human-readable report of the recorded telemetry.
func (st *Stats) String() string {
	s := st.Snapshot()
	return s.String()
}

// Reset clears all recorded telemetry.
func (st *Stats) Reset() {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.s = Snapshot{}
}

// Merge adds a snapshot into the accumulator.
func (st *Stats) Merge(s *Snapshot) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.s.merge(s)
}

// global is the process-wide aggregate every analysis merges into; it backs
// the expvar/zenstats exposition.
var global Stats

// Global returns the process-wide telemetry aggregate.
func Global() *Stats { return &global }
