package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecMergesIntoStats(t *testing.T) {
	var st Stats
	r := Begin(&st, nil, "bdd", "find")
	stop := r.Phase("solve")
	time.Sleep(time.Millisecond)
	stop()
	r.SetDAG(10, 3, 1)
	r.CountSolve(true)
	r.AddBDD(BDDStats{Nodes: 5, CacheHits: 8, CacheMisses: 2})
	r.End()

	s := st.Snapshot()
	if s.Analyses != 1 || s.AnalysesBy["bdd"] != 1 {
		t.Fatalf("analyses = %d by=%v, want 1 bdd analysis", s.Analyses, s.AnalysesBy)
	}
	if s.Solves != 1 || s.Sat != 1 {
		t.Fatalf("solves=%d sat=%d, want 1/1", s.Solves, s.Sat)
	}
	p, ok := s.Phase("solve")
	if !ok || p.Count != 1 || p.Total <= 0 {
		t.Fatalf("phase solve = %+v ok=%v, want count 1 and positive total", p, ok)
	}
	if s.DAG.Nodes != 10 || s.BDD.Nodes != 5 {
		t.Fatalf("dag=%+v bdd=%+v", s.DAG, s.BDD)
	}
	if rate := s.BDD.CacheHitRate(); rate != 0.8 {
		t.Fatalf("cache hit rate = %v, want 0.8", rate)
	}
}

func TestSnapshotMergeSemantics(t *testing.T) {
	var st Stats
	st.Merge(&Snapshot{Analyses: 1, DAG: DAGStats{Nodes: 100, Depth: 5, Vars: 2},
		Phases: []PhaseTiming{{Name: "solve", Count: 1, Total: time.Millisecond}}})
	st.Merge(&Snapshot{Analyses: 1, DAG: DAGStats{Nodes: 10, Depth: 50, Vars: 9},
		Phases: []PhaseTiming{{Name: "solve", Count: 2, Total: time.Millisecond}}})
	s := st.Snapshot()
	if s.Analyses != 2 {
		t.Fatalf("analyses = %d, want 2", s.Analyses)
	}
	// DAG keeps the largest analyzed DAG, not a sum.
	if s.DAG.Nodes != 100 || s.DAG.Depth != 5 {
		t.Fatalf("dag = %+v, want the 100-node record", s.DAG)
	}
	p, _ := s.Phase("solve")
	if p.Count != 3 || p.Total != 2*time.Millisecond {
		t.Fatalf("merged phase = %+v", p)
	}
}

func TestNilSafety(t *testing.T) {
	var st *Stats
	if s := st.Snapshot(); s.Analyses != 0 {
		t.Fatal("nil Stats snapshot must be zero")
	}
	st.Reset()
	st.Merge(&Snapshot{})
	var r *Rec
	r.Phase("x")()
	r.SetDAG(1, 1, 1)
	r.CountSolve(true)
	r.ReportBackend(nil)
	r.End()
}

func TestStringReport(t *testing.T) {
	var st Stats
	r := Begin(&st, nil, "sat", "find")
	r.Phase("solve")()
	r.CountSolve(false)
	r.s.SAT = SATStats{Vars: 7, Clauses: 12, Conflicts: 3}
	r.End()
	out := st.String()
	for _, want := range []string{"1 analyses", "sat 1", "solve", "7 vars", "12 clauses", "3 conflicts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report %q missing %q", out, want)
		}
	}
}

func TestCollectTracer(t *testing.T) {
	var tr CollectTracer
	r := Begin(nil, &tr, "bdd", "find")
	r.Phase("solve")()
	r.Event("paths", 4)
	r.End()
	ev := tr.Events()
	var names []string
	for _, e := range ev {
		if e.Span != "find/bdd" {
			t.Fatalf("unexpected span %q", e.Span)
		}
		if strings.HasPrefix(e.Name, "attr:") {
			continue // Rec.End attaches counter attributes; not under test
		}
		names = append(names, e.Name)
	}
	want := []string{"start", "solve", "paths", "end"}
	if len(names) != len(want) {
		t.Fatalf("events = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("events = %v, want %v", names, want)
		}
	}
}

func TestWriterTracer(t *testing.T) {
	var b strings.Builder
	tr := &WriterTracer{W: &b}
	sp := tr.StartSpan("find/bdd")
	sp.Event("solve", time.Millisecond)
	sp.End()
	out := b.String()
	if !strings.Contains(out, "span find/bdd") || !strings.Contains(out, "solve") ||
		!strings.Contains(out, "end find/bdd") {
		t.Fatalf("trace output %q", out)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := Begin(nil, nil, "bdd", "find")
	r.CountSolve(true)
	r.End()

	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/zenstats", nil))
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rr.Body.String())
	}
	if snap.Solves < 1 || snap.Analyses < 1 {
		t.Fatalf("global snapshot not reflected: %+v", snap)
	}
}

func TestStartDebugServerGracefulShutdown(t *testing.T) {
	addr, shutdown, err := StartDebugServer("localhost:0")
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/zenstats")
	if err != nil {
		t.Fatalf("GET zenstats: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("zenstats status %d", resp.StatusCode)
	}

	// Shutdown drains and closes the listener: subsequent connections
	// must be refused.
	done := make(chan struct{})
	go func() { shutdown(5 * time.Second); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("shutdown did not return")
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatalf("listener still accepting after shutdown")
	}
	// shutdown is idempotent.
	shutdown(time.Second)
}
