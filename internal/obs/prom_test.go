package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sampleSnapshot builds a snapshot with every section populated so the
// exporter renders all families.
func sampleSnapshot() Snapshot {
	var s Snapshot
	s.Analyses = 12
	s.AnalysesBy = map[string]int64{"bdd": 7, "sat": 5}
	s.Solves = 14
	s.Sat = 9
	s.addPhase("build", 3*time.Millisecond, 12)
	s.addPhase("solve", 40*time.Millisecond, 14)
	s.DAG.Nodes = 321
	s.BDD = BDDStats{Nodes: 1000, CacheHits: 400, CacheMisses: 100, UniqueHits: 50}
	s.SAT = SATStats{Vars: 64, Clauses: 900, Learned: 30, Decisions: 200, Propagations: 4000, Conflicts: 25, Restarts: 2}
	s.Compile.Compiles = 2
	s.Compile.Instructions = 150
	s.StateSet = StateSetStats{Transformers: 1, Forwards: 3, Reverses: 2}
	s.Fuzz = FuzzStats{Execs: 500, Divergences: 1}
	s.Lint = LintStats{Models: 4, Findings: 2}
	return s
}

// TestSnapshotMetricsLint round-trips the exporter through the linter:
// whatever WriteSnapshotMetrics emits must be valid exposition format.
func TestSnapshotMetricsLint(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	WriteSnapshotMetrics(m, sampleSnapshot())
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := LintMetrics(strings.NewReader(out)); err != nil {
		t.Fatalf("exporter output fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"zen_analyses_total 12",
		`zen_analyses_by_backend_total{backend="bdd"} 7`,
		`zen_phase_seconds_total{phase="solve"} 0.04`,
		"zen_bdd_nodes_total 1000",
		"zen_sat_propagations_total 4000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsWriterHistogram checks the full histogram exposition shape
// and that it lints, including the le-label bucket series.
func TestMetricsWriterHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Second)

	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Family("zen_serve_latency_seconds", "histogram", "Request latency.")
	m.Histogram([][2]string{{"model", "acl"}}, h.Snapshot())
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := LintMetrics(strings.NewReader(out)); err != nil {
		t.Fatalf("histogram fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		`zen_serve_latency_seconds_bucket{model="acl",le="0.001"} 1`,
		`zen_serve_latency_seconds_bucket{model="acl",le="0.01"} 2`,
		`zen_serve_latency_seconds_bucket{model="acl",le="+Inf"} 3`,
		`zen_serve_latency_seconds_count{model="acl"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsWriterDuplicateFamily(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Family("zen_x_total", "counter", "x")
	m.Family("zen_x_total", "counter", "x again")
	if m.Err() == nil {
		t.Fatal("duplicate family not caught")
	}
}

func TestMetricsWriterLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Family("zen_x_total", "counter", "x")
	m.Sample("", [][2]string{{"model", `a"b\c` + "\n"}}, 1)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if err := LintMetrics(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("escaped label fails lint: %v\n%s", err, buf.String())
	}
}

// TestLintMetricsRejects feeds the linter documents with each class of
// violation it exists to catch.
func TestLintMetricsRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			"bad metric name",
			"# TYPE 0bad counter\n0bad 1\n",
			"bad metric name",
		},
		{
			"bad label name",
			"# TYPE zen_x_total counter\nzen_x_total{0bad=\"v\"} 1\n",
			"bad label name",
		},
		{
			"sample without TYPE",
			"zen_x_total 1\n",
			"without a TYPE",
		},
		{
			"duplicate series",
			"# TYPE zen_x_total counter\nzen_x_total 1\nzen_x_total 2\n",
			"duplicate series",
		},
		{
			"duplicate TYPE",
			"# TYPE zen_x_total counter\n# TYPE zen_x_total counter\nzen_x_total 1\n",
			"duplicate TYPE",
		},
		{
			"TYPE after samples",
			"# TYPE zen_x counter\nzen_x 1\n# TYPE zen_x gauge\n",
			"duplicate TYPE",
		},
		{
			"bad type value",
			"# TYPE zen_x_total chart\nzen_x_total 1\n",
			"bad TYPE",
		},
		{
			"missing +Inf bucket",
			"# TYPE zen_h histogram\n" +
				"zen_h_bucket{le=\"0.1\"} 1\nzen_h_sum 0.05\nzen_h_count 1\n",
			"missing +Inf",
		},
		{
			"non-cumulative buckets",
			"# TYPE zen_h histogram\n" +
				"zen_h_bucket{le=\"0.1\"} 5\nzen_h_bucket{le=\"+Inf\"} 3\nzen_h_sum 1\nzen_h_count 3\n",
			"not cumulative",
		},
		{
			"count mismatch",
			"# TYPE zen_h histogram\n" +
				"zen_h_bucket{le=\"0.1\"} 1\nzen_h_bucket{le=\"+Inf\"} 2\nzen_h_sum 1\nzen_h_count 5\n",
			"_count 5",
		},
		{
			"missing count",
			"# TYPE zen_h histogram\n" +
				"zen_h_bucket{le=\"0.1\"} 1\nzen_h_bucket{le=\"+Inf\"} 2\nzen_h_sum 1\n",
			"missing _count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintMetrics(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("lint accepted:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLintMetricsAcceptsLabeledHistograms checks per-label-set histogram
// validation: two label sets, each complete, lint clean.
func TestLintMetricsAcceptsLabeledHistograms(t *testing.T) {
	doc := "# TYPE zen_h histogram\n" +
		"zen_h_bucket{model=\"a\",le=\"0.1\"} 1\nzen_h_bucket{model=\"a\",le=\"+Inf\"} 2\n" +
		"zen_h_sum{model=\"a\"} 0.3\nzen_h_count{model=\"a\"} 2\n" +
		"zen_h_bucket{model=\"b\",le=\"0.1\"} 4\nzen_h_bucket{model=\"b\",le=\"+Inf\"} 4\n" +
		"zen_h_sum{model=\"b\"} 0.1\nzen_h_count{model=\"b\"} 4\n"
	if err := LintMetrics(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
}
