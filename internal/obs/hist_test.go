package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // <= 0.001
	h.Observe(1 * time.Millisecond)   // boundary lands in its bucket (le semantics)
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(50 * time.Millisecond)  // <= 0.1
	h.Observe(2 * time.Second)        // +Inf
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 2
	if math.Abs(s.SumSeconds-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.SumSeconds, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	// p50 interpolates within the first bucket [0, 0.001].
	if q := h.Quantile(0.5); q <= 0 || q > 0.001 {
		t.Fatalf("p50 = %g, want in (0, 0.001]", q)
	}
	// p99 lands in the (0.01, 0.1] bucket.
	if q := h.Quantile(0.99); q <= 0.01 || q > 0.1 {
		t.Fatalf("p99 = %g, want in (0.01, 0.1]", q)
	}
	// Empty histogram answers 0.
	if q := NewHistogram(DefaultLatencyBounds()).Quantile(0.5); q != 0 {
		t.Fatalf("empty p50 = %g, want 0", q)
	}
	// Observations beyond the last bound clamp to it.
	over := NewHistogram([]float64{0.001})
	over.Observe(time.Minute)
	if q := over.Quantile(0.99); q != 0.001 {
		t.Fatalf("overflow p99 = %g, want clamp to 0.001", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{0.001, 0.01})
	b := NewHistogram([]float64{0.001, 0.01})
	a.Observe(500 * time.Microsecond)
	b.Observe(5 * time.Millisecond)
	b.Observe(time.Second)
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 3 || s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("merged = %+v", s)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("boundary-mismatch merge did not panic")
		}
	}()
	a.Merge(NewHistogram([]float64{1, 2, 3}))
}

// TestHistogramMergeUnderContention merges while both sides observe from
// many goroutines — the satellite race test. Totals must be exact: no
// observation is lost or double-counted by a concurrent merge.
func TestHistogramMergeUnderContention(t *testing.T) {
	bounds := DefaultLatencyBounds()
	dst := NewHistogram(bounds)
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := NewHistogram(bounds)
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					dst.Observe(time.Duration(i%7+1) * time.Millisecond)
				} else {
					src.Observe(time.Duration(i%5+1) * 100 * time.Microsecond)
				}
			}
			dst.Merge(src)
		}(w)
	}
	// Concurrent readers exercise Snapshot/Quantile against the races.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = dst.Quantile(0.99)
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	s := dst.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec(DefaultLatencyBounds(), "model", "backend", "verdict")
	v.With("acl", "bdd", "sat").Observe(time.Millisecond)
	v.With("acl", "bdd", "sat").Observe(2 * time.Millisecond)
	v.With("acl", "sat", "unsat").Observe(time.Millisecond)
	v.With("rm", "bdd", "sat").Observe(time.Millisecond)

	series := v.Snapshot()
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	// Sorted by label values: acl/bdd/sat, acl/sat/unsat, rm/bdd/sat.
	if series[0].Values[0] != "acl" || series[0].Values[1] != "bdd" {
		t.Fatalf("series order: %+v", series)
	}
	if series[0].Hist.Count != 2 || series[1].Hist.Count != 1 || series[2].Hist.Count != 1 {
		t.Fatalf("series counts: %d %d %d", series[0].Hist.Count, series[1].Hist.Count, series[2].Hist.Count)
	}
}

// TestHistogramVecConcurrentWith races find-or-create against itself: all
// goroutines must land on the same histogram per label set.
func TestHistogramVecConcurrentWith(t *testing.T) {
	v := NewHistogramVec(DefaultLatencyBounds(), "model")
	const workers = 16
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := []string{"a", "b", "c"}[w%3]
			for i := 0; i < per; i++ {
				v.With(model).Observe(time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, s := range v.Snapshot() {
		total += s.Hist.Count
	}
	if total != workers*per {
		t.Fatalf("total = %d, want %d", total, workers*per)
	}
}
