package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

var publishOnce sync.Once

// PublishExpvar publishes the Global telemetry aggregate as the expvar
// variable "zenstats" (visible on /debug/vars). Safe to call repeatedly.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("zenstats", expvar.Func(func() any {
			return Global().Snapshot()
		}))
	})
}

// Handler serves the Global telemetry aggregate as JSON.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		snap := Global().Snapshot()
		_ = enc.Encode(&snap)
	})
}

// DebugMux returns a mux exposing the standard debug surface:
// /debug/zenstats (JSON telemetry), /debug/vars (expvar, including the
// zenstats variable), and /debug/pprof/*.
func DebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/zenstats", Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer serves DebugMux on addr (e.g. "localhost:6060") in a
// background goroutine. It returns the bound address (useful with ":0")
// and a shutdown function that gracefully drains in-flight debug requests
// for up to the given timeout before closing the listener; callers wire
// it into their signal handling so Ctrl-C does not cut a pprof download
// mid-body.
func StartDebugServer(addr string) (string, func(timeout time.Duration), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func(timeout time.Duration) {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return ln.Addr().String(), shutdown, nil
}
