package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTreeTracerNesting checks the basic span-tree shape: a root with
// sequential phase children, attributes, and duration accounting.
func TestTreeTracerNesting(t *testing.T) {
	tr := NewTreeTracer()
	root := tr.StartRoot("query")
	root.SetAttr("model", "demo/add8")
	find := root.child("find/bdd")
	for _, phase := range []string{"symeval", "solve", "decode"} {
		c := find.Child(phase)
		time.Sleep(time.Millisecond)
		c.End()
	}
	find.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	n := roots[0]
	if n.Name != "query" || n.Attrs["model"] != "demo/add8" {
		t.Fatalf("root = %+v", n)
	}
	if len(n.Children) != 1 || len(n.Children[0].Children) != 3 {
		t.Fatalf("tree shape wrong: %s", n)
	}
	if n.DurNS <= 0 {
		t.Fatalf("root duration not recorded")
	}
	// Leaf durations sum into the root: the three phases are the only
	// instrumented work, so their sum is positive and bounded by the root.
	leaf := SumLeafDurNS(n)
	if leaf < 3*int64(time.Millisecond) || leaf > n.DurNS {
		t.Fatalf("leaf sum %d out of range (root %d)", leaf, n.DurNS)
	}
	for _, c := range n.Children[0].Children {
		if c.DurNS < int64(time.Millisecond) {
			t.Fatalf("phase %s duration %d too small", c.Name, c.DurNS)
		}
	}
}

// TestTreeTracerConcurrentRoots runs parallel analyses on one tracer and
// checks no child ever lands in the wrong parent — the satellite
// requirement for parallel queries.
func TestTreeTracerConcurrentRoots(t *testing.T) {
	tr := NewTreeTracer()
	const workers = 16
	const childrenPer = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			root := tr.StartRoot(fmt.Sprintf("root-%d", w))
			for i := 0; i < childrenPer; i++ {
				c := root.Child(fmt.Sprintf("child-%d-%d", w, i))
				c.(*TreeSpan).SetAttr("w", w)
				c.End()
			}
			root.End()
		}(w)
	}
	wg.Wait()
	roots := tr.Roots()
	if len(roots) != workers {
		t.Fatalf("roots = %d, want %d", len(roots), workers)
	}
	for _, r := range roots {
		var w int
		if _, err := fmt.Sscanf(r.Name, "root-%d", &w); err != nil {
			t.Fatalf("bad root name %q", r.Name)
		}
		if len(r.Children) != childrenPer {
			t.Fatalf("%s has %d children, want %d", r.Name, len(r.Children), childrenPer)
		}
		for _, c := range r.Children {
			var cw, ci int
			if _, err := fmt.Sscanf(c.Name, "child-%d-%d", &cw, &ci); err != nil || cw != w {
				t.Fatalf("child %q interleaved into %q", c.Name, r.Name)
			}
		}
	}
}

// TestTreeSpanConcurrentChildren hammers one parent from many
// goroutines; every child must be present exactly once.
func TestTreeSpanConcurrentChildren(t *testing.T) {
	tr := NewTreeTracer()
	root := tr.StartRoot("batch")
	const workers = 8
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c := root.Child(fmt.Sprintf("q-%d-%d", w, i))
				c.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	n := root.Snapshot()
	if len(n.Children) != workers*per {
		t.Fatalf("children = %d, want %d", len(n.Children), workers*per)
	}
	seen := make(map[string]bool, workers*per)
	for _, c := range n.Children {
		if seen[c.Name] {
			t.Fatalf("duplicate child %q", c.Name)
		}
		seen[c.Name] = true
	}
}

// TestTreeTracerAsZenTracer drives the tracer through the Rec plumbing
// (the path every analysis uses) and checks phases arrive as children
// with counter attributes on the analysis span.
func TestTreeTracerAsZenTracer(t *testing.T) {
	tr := NewTreeTracer()
	r := Begin(nil, tr, "bdd", "find")
	r.Phase("symeval")()
	r.Phase("solve")()
	r.CountSolve(true)
	r.End()
	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	n := roots[0]
	if n.Name != "find/bdd" {
		t.Fatalf("root = %q", n.Name)
	}
	var names []string
	for _, c := range n.Children {
		names = append(names, c.Name)
	}
	if len(names) != 2 || names[0] != "symeval" || names[1] != "solve" {
		t.Fatalf("children = %v", names)
	}
	if n.Attrs["backend"] != "bdd" || n.Attrs["solves"] != int64(1) {
		t.Fatalf("attrs = %v", n.Attrs)
	}
}

// TestChildTracerParents checks the adapter: analyses started through a
// ChildTracer nest under the given parent span.
func TestChildTracerParents(t *testing.T) {
	tr := NewTreeTracer()
	root := tr.StartRoot("query")
	sub := ChildTracer(root)
	r := Begin(nil, sub, "sat", "find")
	r.Phase("solve")()
	r.End()
	root.End()
	n := tr.Roots()[0]
	find := n.Find("find/sat")
	if find == nil {
		t.Fatalf("find/sat not nested under root:\n%s", n)
	}
	if find.Find("solve") == nil {
		t.Fatalf("solve not nested under find/sat:\n%s", n)
	}
}

// TestWriteChromeTrace checks the export loads as JSON with the
// complete-event shape Perfetto expects: X events with ts/dur, children
// contained within their parents, one tid per root.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTreeTracer()
	for i := 0; i < 2; i++ {
		root := tr.StartRoot(fmt.Sprintf("query-%d", i))
		c := root.child("find/bdd")
		c.Child("solve").End()
		c.End()
		root.End()
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("events = %d, want 6", len(doc.TraceEvents))
	}
	tids := make(map[int]bool)
	byName := make(map[string]int)
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" && e.Phase != "i" {
			t.Fatalf("unexpected phase %q", e.Phase)
		}
		if e.TS < 0 || e.PID != 1 || e.TID < 1 {
			t.Fatalf("bad event %+v", e)
		}
		tids[e.TID] = true
		byName[e.Name] = e.TID
	}
	if len(tids) != 2 {
		t.Fatalf("tids = %v, want one per root", tids)
	}
	if byName["query-0"] == byName["query-1"] {
		t.Fatalf("roots share a tid")
	}
}

// TestChromeTraceEmpty keeps the zero-trace export valid.
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
}

// TestSpanSnapshotDuringRecording snapshots a tree while another
// goroutine is still appending — the coalesced-execution-outlives-leader
// case. Run under -race this is the memory-safety check.
func TestSpanSnapshotDuringRecording(t *testing.T) {
	tr := NewTreeTracer()
	root := tr.StartRoot("query")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			c := root.Child("late")
			c.SetAttr("i", i)
			c.End()
		}
	}()
	for i := 0; i < 50; i++ {
		_ = root.Snapshot()
	}
	<-done
	root.End()
	if n := len(root.Snapshot().Children); n != 500 {
		t.Fatalf("children = %d, want 500", n)
	}
}
