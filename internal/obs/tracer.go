package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer is the pluggable tracing hook: each analysis opens one span named
// "<analysis>/<backend>" (e.g. "find/bdd") and emits one event per phase
// with its duration. Implementations must be safe for concurrent use.
type Tracer interface {
	StartSpan(name string) Span
}

// Span is one traced analysis. Event is called once per phase (and for
// ad-hoc markers like path counts); End closes the span.
type Span interface {
	Event(name string, args ...any)
	End()
}

// WriterTracer logs spans and events as indented lines to W, one analysis
// per block — a minimal human-readable trace sink.
type WriterTracer struct {
	W io.Writer

	mu sync.Mutex
}

// StartSpan begins a logged span.
func (t *WriterTracer) StartSpan(name string) Span {
	t.mu.Lock()
	fmt.Fprintf(t.W, "span %s\n", name)
	t.mu.Unlock()
	return &writerSpan{t: t, name: name, start: time.Now()}
}

type writerSpan struct {
	t     *WriterTracer
	name  string
	start time.Time
}

func (s *writerSpan) Event(name string, args ...any) {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if len(args) == 0 {
		fmt.Fprintf(s.t.W, "  %s\n", name)
		return
	}
	fmt.Fprintf(s.t.W, "  %s: %v\n", name, args)
}

func (s *writerSpan) End() {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	fmt.Fprintf(s.t.W, "end %s (%v)\n", s.name, time.Since(s.start).Round(time.Microsecond))
}

// TraceEvent is one record captured by CollectTracer. Span start and end
// are recorded as events named "start" and "end".
type TraceEvent struct {
	Span string
	Name string
	Args []any
}

// CollectTracer records spans and events in memory, for tests and for
// programmatic inspection of an analysis.
type CollectTracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// StartSpan begins a recorded span.
func (t *CollectTracer) StartSpan(name string) Span {
	t.record(TraceEvent{Span: name, Name: "start"})
	return &collectSpan{t: t, name: name}
}

// Events returns a copy of everything recorded so far.
func (t *CollectTracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

func (t *CollectTracer) record(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

type collectSpan struct {
	t    *CollectTracer
	name string
}

func (s *collectSpan) Event(name string, args ...any) {
	s.t.record(TraceEvent{Span: s.name, Name: name, Args: args})
}

func (s *collectSpan) End() {
	s.t.record(TraceEvent{Span: s.name, Name: "end"})
}
