package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Tracer is the pluggable tracing hook: each analysis opens one span named
// "<analysis>/<backend>" (e.g. "find/bdd") and nests one child span per
// phase. Implementations must be safe for concurrent use. TreeTracer
// (trace.go) captures full span trees; WriterTracer and CollectTracer are
// flat sinks that render the same calls as a line/event stream.
type Tracer interface {
	StartSpan(name string) Span
}

// Span is one traced analysis. Child opens a nested span (solver phases
// nest under their analysis), SetAttr attaches an attribute (model,
// backend, verdict, counters), Event records an ad-hoc instant marker,
// and End closes the span. Implementations must be safe for concurrent
// use: parallel children of one span must never interleave into another.
type Span interface {
	Event(name string, args ...any)
	Child(name string) Span
	SetAttr(key string, value any)
	End()
}

// WriterTracer logs spans and events as indented lines to W, one analysis
// per block — a minimal human-readable trace sink.
type WriterTracer struct {
	W io.Writer

	mu sync.Mutex
}

// StartSpan begins a logged span.
func (t *WriterTracer) StartSpan(name string) Span {
	t.mu.Lock()
	fmt.Fprintf(t.W, "span %s\n", name)
	t.mu.Unlock()
	return &writerSpan{t: t, name: name, start: time.Now()}
}

type writerSpan struct {
	t     *WriterTracer
	name  string
	start time.Time
	depth int
}

func (s *writerSpan) indent() string {
	return strings.Repeat("  ", s.depth+1)
}

func (s *writerSpan) Event(name string, args ...any) {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if len(args) == 0 {
		fmt.Fprintf(s.t.W, "%s%s\n", s.indent(), name)
		return
	}
	fmt.Fprintf(s.t.W, "%s%s: %v\n", s.indent(), name, args)
}

// Child opens a nested span, rendered as an indented "name (dur)" line
// when it ends (phases log on completion, when their duration is known).
func (s *writerSpan) Child(name string) Span {
	return &writerSpan{t: s.t, name: name, start: time.Now(), depth: s.depth + 1}
}

// SetAttr logs the attribute as an indented "key = value" line.
func (s *writerSpan) SetAttr(key string, value any) {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	fmt.Fprintf(s.t.W, "%s%s = %v\n", s.indent(), key, value)
}

func (s *writerSpan) End() {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	d := time.Since(s.start).Round(time.Microsecond)
	if s.depth > 0 {
		fmt.Fprintf(s.t.W, "%s%s (%v)\n", strings.Repeat("  ", s.depth), s.name, d)
		return
	}
	fmt.Fprintf(s.t.W, "end %s (%v)\n", s.name, d)
}

// TraceEvent is one record captured by CollectTracer. Span start and end
// are recorded as events named "start" and "end"; a child span records
// one event named after it (on the parent's span name) when it ends, so
// a flat event list still shows the phase sequence in completion order.
type TraceEvent struct {
	Span string
	Name string
	Args []any
}

// CollectTracer records spans and events in memory, for tests and for
// programmatic inspection of an analysis.
type CollectTracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// StartSpan begins a recorded span.
func (t *CollectTracer) StartSpan(name string) Span {
	t.record(TraceEvent{Span: name, Name: "start"})
	return &collectSpan{t: t, name: name}
}

// Events returns a copy of everything recorded so far.
func (t *CollectTracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

func (t *CollectTracer) record(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

type collectSpan struct {
	t    *CollectTracer
	name string
	// child marks a nested phase span: it records a single event named
	// after it, on the parent's span name, when it ends.
	child string
}

func (s *collectSpan) Event(name string, args ...any) {
	s.t.record(TraceEvent{Span: s.spanName(), Name: name, Args: args})
}

func (s *collectSpan) Child(name string) Span {
	return &collectSpan{t: s.t, name: s.spanName(), child: name}
}

func (s *collectSpan) SetAttr(key string, value any) {
	s.t.record(TraceEvent{Span: s.spanName(), Name: "attr:" + key, Args: []any{value}})
}

func (s *collectSpan) spanName() string {
	if s.child != "" {
		return s.name + "/" + s.child
	}
	return s.name
}

func (s *collectSpan) End() {
	if s.child != "" {
		s.t.record(TraceEvent{Span: s.name, Name: s.child})
		return
	}
	s.t.record(TraceEvent{Span: s.name, Name: "end"})
}
