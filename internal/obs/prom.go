package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is a zero-dependency Prometheus text-exposition writer: the
// Global telemetry aggregate (and the service layer's histograms and
// gauges) render as `# HELP`/`# TYPE`-annotated families that any
// Prometheus scraper ingests directly. promlint.go holds the matching
// validator used by tests and the check.sh metrics-lint gate.

// MetricsWriter accumulates Prometheus text-format families. Families
// must be written one at a time (Family then its Samples); the writer
// guards against duplicate family names.
type MetricsWriter struct {
	w      io.Writer
	err    error
	opened map[string]bool
	cur    string
}

// NewMetricsWriter wraps w.
func NewMetricsWriter(w io.Writer) *MetricsWriter {
	return &MetricsWriter{w: w, opened: make(map[string]bool)}
}

// Err returns the first write error.
func (m *MetricsWriter) Err() error { return m.err }

// Family begins a metric family: one HELP and one TYPE line. typ is
// "counter", "gauge", or "histogram".
func (m *MetricsWriter) Family(name, typ, help string) {
	if m.err != nil {
		return
	}
	if m.opened[name] {
		m.err = fmt.Errorf("obs: duplicate metric family %q", name)
		return
	}
	m.opened[name] = true
	m.cur = name
	m.printf("# HELP %s %s\n", name, help)
	m.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample of the current family. labels are
// name/value pairs; suffix extends the family name (histograms use
// "_bucket", "_sum", "_count").
func (m *MetricsWriter) Sample(suffix string, labels [][2]string, v float64) {
	if m.err != nil {
		return
	}
	name := m.cur + suffix
	if len(labels) == 0 {
		m.printf("%s %s\n", name, formatValue(v))
		return
	}
	parts := make([]string, len(labels))
	for i, kv := range labels {
		parts[i] = kv[0] + `="` + escapeLabel(kv[1]) + `"`
	}
	m.printf("%s{%s} %s\n", name, strings.Join(parts, ","), formatValue(v))
}

// Histogram writes a full histogram exposition (cumulative buckets with
// le labels, _sum, _count) for one label set of the current family.
func (m *MetricsWriter) Histogram(labels [][2]string, s HistogramSnapshot) {
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatValue(s.Bounds[i])
		}
		m.Sample("_bucket", append(append([][2]string(nil), labels...), [2]string{"le", le}), float64(cum))
	}
	m.Sample("_sum", labels, s.SumSeconds)
	m.Sample("_count", labels, float64(cum))
}

func (m *MetricsWriter) printf(format string, args ...any) {
	if m.err == nil {
		_, m.err = fmt.Fprintf(m.w, format, args...)
	}
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteSnapshotMetrics renders a telemetry snapshot (typically the
// Global aggregate) as Prometheus families under the zen_ prefix. The
// serve section is omitted: the live server exposes its own counters
// and histograms (internal/serve), and double-reporting the same totals
// under two names would make every dashboard ambiguous.
func WriteSnapshotMetrics(m *MetricsWriter, s Snapshot) {
	m.Family("zen_analyses_total", "counter", "Completed analyses (Find, Verify, FindAll, Evaluate, ...).")
	m.Sample("", nil, float64(s.Analyses))

	m.Family("zen_analyses_by_backend_total", "counter", "Completed analyses by solver backend.")
	backends := make([]string, 0, len(s.AnalysesBy))
	for k := range s.AnalysesBy {
		backends = append(backends, k)
	}
	sort.Strings(backends)
	for _, k := range backends {
		m.Sample("", [][2]string{{"backend", k}}, float64(s.AnalysesBy[k]))
	}

	m.Family("zen_solves_total", "counter", "Solver invocations (FindAll re-solves count individually).")
	m.Sample("", nil, float64(s.Solves))
	m.Family("zen_solves_sat_total", "counter", "Solver invocations that returned a model.")
	m.Sample("", nil, float64(s.Sat))

	m.Family("zen_phase_seconds_total", "counter", "Accumulated wall time per analysis phase.")
	for _, p := range sortedPhases(s.Phases) {
		m.Sample("", [][2]string{{"phase", p.Name}}, p.Total.Seconds())
	}
	m.Family("zen_phase_count_total", "counter", "Occurrences per analysis phase.")
	for _, p := range sortedPhases(s.Phases) {
		m.Sample("", [][2]string{{"phase", p.Name}}, float64(p.Count))
	}

	m.Family("zen_dag_nodes_max", "gauge", "Expression-DAG nodes of the largest analyzed model.")
	m.Sample("", nil, float64(s.DAG.Nodes))

	m.Family("zen_bdd_nodes_total", "counter", "Allocated nonterminal BDD nodes.")
	m.Sample("", nil, float64(s.BDD.Nodes))
	m.Family("zen_bdd_cache_hits_total", "counter", "BDD operation-cache hits.")
	m.Sample("", nil, float64(s.BDD.CacheHits))
	m.Family("zen_bdd_cache_misses_total", "counter", "BDD operation-cache misses.")
	m.Sample("", nil, float64(s.BDD.CacheMisses))
	m.Family("zen_bdd_unique_hits_total", "counter", "BDD unique-table hits.")
	m.Sample("", nil, float64(s.BDD.UniqueHits))

	m.Family("zen_sat_clauses_total", "counter", "CNF clauses added across SAT solves.")
	m.Sample("", nil, float64(s.SAT.Clauses))
	m.Family("zen_sat_learned_total", "counter", "Learned clauses across SAT solves.")
	m.Sample("", nil, float64(s.SAT.Learned))
	m.Family("zen_sat_decisions_total", "counter", "CDCL decisions across SAT solves.")
	m.Sample("", nil, float64(s.SAT.Decisions))
	m.Family("zen_sat_propagations_total", "counter", "Unit propagations across SAT solves.")
	m.Sample("", nil, float64(s.SAT.Propagations))
	m.Family("zen_sat_conflicts_total", "counter", "Conflicts across SAT solves.")
	m.Sample("", nil, float64(s.SAT.Conflicts))
	m.Family("zen_sat_restarts_total", "counter", "Restarts across SAT solves.")
	m.Sample("", nil, float64(s.SAT.Restarts))

	m.Family("zen_portfolio_races_total", "counter", "Solver-portfolio races run.")
	m.Sample("", nil, float64(s.Portfolio.Races))
	m.Family("zen_portfolio_wins_total", "counter", "Solver-portfolio races by winning strategy.")
	strategies := make([]string, 0, len(s.Portfolio.WinsBy))
	for k := range s.Portfolio.WinsBy {
		strategies = append(strategies, k)
	}
	sort.Strings(strategies)
	for _, k := range strategies {
		m.Sample("", [][2]string{{"strategy", k}}, float64(s.Portfolio.WinsBy[k]))
	}
	m.Family("zen_portfolio_clauses_shared_total", "counter", "Clauses exported to the portfolio clause exchange.")
	m.Sample("", nil, float64(s.Portfolio.ClausesShared))
	m.Family("zen_portfolio_clauses_imported_total", "counter", "Clauses accepted from the portfolio clause exchange.")
	m.Sample("", nil, float64(s.Portfolio.ClausesImported))
	m.Family("zen_portfolio_loser_aborts_total", "counter", "Losing portfolio strategies torn down after a race.")
	m.Sample("", nil, float64(s.Portfolio.LoserAborts))
	m.Family("zen_portfolio_loser_abort_seconds_total", "counter", "Wall time between a race winner's answer and loser teardown.")
	m.Sample("", nil, float64(s.Portfolio.LoserAbortNs)/1e9)

	m.Family("zen_compiles_total", "counter", "Model compilations.")
	m.Sample("", nil, float64(s.Compile.Compiles))
	m.Family("zen_compile_instructions_total", "counter", "Instructions emitted by model compilation.")
	m.Sample("", nil, float64(s.Compile.Instructions))

	m.Family("zen_bitslice_plans_total", "counter", "Bitslice plan compilations.")
	m.Sample("", nil, float64(s.Bitslice.Plans))
	m.Family("zen_bitslice_plan_ops_total", "counter", "Word instructions emitted by bitslice plan compilation.")
	m.Sample("", nil, float64(s.Bitslice.PlanOps))
	m.Family("zen_bitslice_batches_total", "counter", "Bitslice 64-lane batch executions.")
	m.Sample("", nil, float64(s.Bitslice.Batches))
	m.Family("zen_bitslice_packets_total", "counter", "Inputs evaluated through the bitslice batch engine.")
	m.Sample("", nil, float64(s.Bitslice.Packets))
	m.Family("zen_bitslice_fallbacks_total", "counter", "Batch evaluations served by the scalar path (model outside the bitslice fragment).")
	m.Sample("", nil, float64(s.Bitslice.Fallbacks))
	m.Family("zen_bitslice_lanes", "gauge", "Batch width of the bitslice engine (packets per plan execution).")
	m.Sample("", nil, 64)

	m.Family("zen_stateset_transformers_total", "counter", "State-set transformers built.")
	m.Sample("", nil, float64(s.StateSet.Transformers))
	m.Family("zen_stateset_forwards_total", "counter", "State-set forward applications.")
	m.Sample("", nil, float64(s.StateSet.Forwards))
	m.Family("zen_stateset_reverses_total", "counter", "State-set reverse applications.")
	m.Sample("", nil, float64(s.StateSet.Reverses))

	m.Family("zen_fuzz_execs_total", "counter", "Differential-fuzzing oracle executions.")
	m.Sample("", nil, float64(s.Fuzz.Execs))
	m.Family("zen_fuzz_divergences_total", "counter", "Differential-fuzzing divergences.")
	m.Sample("", nil, float64(s.Fuzz.Divergences))

	m.Family("zen_presolve_runs_total", "counter", "Abstract-interpretation presolve passes over query DAGs.")
	m.Sample("", nil, float64(s.Absint.Presolves))
	m.Family("zen_presolve_nodes_before_total", "counter", "DAG nodes entering presolve.")
	m.Sample("", nil, float64(s.Absint.NodesBefore))
	m.Family("zen_presolve_nodes_after_total", "counter", "DAG nodes surviving presolve.")
	m.Sample("", nil, float64(s.Absint.NodesAfter))
	m.Family("zen_presolve_folds_total", "counter", "Nodes constant-folded by presolve.")
	m.Sample("", nil, float64(s.Absint.Folds))
	m.Family("zen_presolve_compares_decided_total", "counter", "Comparisons decided statically by presolve.")
	m.Sample("", nil, float64(s.Absint.ComparesDecided))
	m.Family("zen_presolve_branches_pruned_total", "counter", "Conditional branches pruned by presolve.")
	m.Sample("", nil, float64(s.Absint.BranchesPruned))
	m.Family("zen_presolve_sliced_inputs_total", "counter", "Input variables sliced from cones of influence by presolve.")
	m.Sample("", nil, float64(s.Absint.SlicedInputs))
	m.Family("zen_auto_backend_picks_total", "counter", "backend:auto resolutions by statically chosen backend.")
	picks := make([]string, 0, len(s.Absint.AutoPicks))
	for k := range s.Absint.AutoPicks {
		picks = append(picks, k)
	}
	sort.Strings(picks)
	for _, k := range picks {
		m.Sample("", [][2]string{{"backend", k}}, float64(s.Absint.AutoPicks[k]))
	}

	m.Family("zen_lint_models_total", "counter", "Models analyzed by zenlint.")
	m.Sample("", nil, float64(s.Lint.Models))
	m.Family("zen_lint_findings_total", "counter", "zenlint findings after suppression.")
	m.Sample("", nil, float64(s.Lint.Findings))
}

func sortedPhases(ps []PhaseTiming) []PhaseTiming {
	out := append([]PhaseTiming(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
