package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintMetrics validates a Prometheus text-exposition document: metric
// and label names, HELP/TYPE placement, duplicate series, and histogram
// shape (le-sorted cumulative buckets, a +Inf bucket, matching _sum and
// _count). It is the gate behind `zend -check-metrics` and the metrics
// tests — a scrape endpoint that drifts out of the format silently
// breaks every dashboard downstream, so the format is enforced in CI.
func LintMetrics(r io.Reader) error {
	var (
		metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	)
	types := make(map[string]string) // family -> TYPE
	helped := make(map[string]bool)  // family -> HELP seen
	seen := make(map[string]bool)    // exact series -> dup check
	sampled := make(map[string]bool) // family -> sample seen (TYPE must precede)
	buckets := make(map[string][]bucketSample)
	sums := make(map[string]float64)
	counts := make(map[string]float64)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !metricName.MatchString(name) {
				return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
			}
			switch fields[1] {
			case "HELP":
				if helped[name] {
					return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				helped[name] = true
			case "TYPE":
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				typ := ""
				if len(fields) >= 4 {
					typ = strings.TrimSpace(fields[3])
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: bad TYPE %q for %q", lineNo, typ, name)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !metricName.MatchString(name) {
			return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		for _, kv := range labels {
			if !labelName.MatchString(kv[0]) {
				return fmt.Errorf("line %d: bad label name %q", lineNo, kv[0])
			}
		}
		series := name + "|" + canonicalLabels(labels)
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true

		family := familyOf(name, types)
		sampled[family] = true
		if types[family] == "" {
			return fmt.Errorf("line %d: sample %q without a TYPE line", lineNo, name)
		}
		if types[family] == "histogram" {
			rest, le := splitLabel(labels, "le")
			key := family + "|" + canonicalLabels(rest)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				f, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("line %d: %v", lineNo, err)
				}
				buckets[key] = append(buckets[key], bucketSample{le: f, cum: value})
			case strings.HasSuffix(name, "_sum"):
				sums[key] = value
			case strings.HasSuffix(name, "_count"):
				counts[key] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Histogram shape checks per label set.
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, +1) {
			return fmt.Errorf("histogram %s: missing +Inf bucket", key)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].cum < bs[i-1].cum {
				return fmt.Errorf("histogram %s: buckets not cumulative at le=%g", key, bs[i].le)
			}
		}
		cnt, ok := counts[key]
		if !ok {
			return fmt.Errorf("histogram %s: missing _count", key)
		}
		if _, ok := sums[key]; !ok {
			return fmt.Errorf("histogram %s: missing _sum", key)
		}
		if cnt != last.cum {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", key, cnt, last.cum)
		}
	}
	return nil
}

type bucketSample struct {
	le  float64
	cum float64
}

// familyOf strips histogram sample suffixes when the base family has a
// TYPE line.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" || types[base] == "summary" {
				return base
			}
		}
	}
	return name
}

func parseSample(line string) (name string, labels [][2]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexAny(rest, " \t")
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		rest = rest[brace+1:]
		for {
			rest = strings.TrimLeft(rest, " \t,")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("bad label syntax in %q", line)
			}
			lname := rest[:eq]
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			val, tail, perr := parseQuoted(rest)
			if perr != nil {
				return "", nil, 0, perr
			}
			labels = append(labels, [2]string{lname, val})
			rest = tail
		}
	} else {
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("no value in %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("bad sample line %q", line)
	}
	value, err = parseLE(fields[0]) // same float syntax, +Inf/NaN allowed
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, labels, value, nil
}

func parseQuoted(s string) (val, rest string, err error) {
	// s starts with the opening quote.
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("unterminated escape in %q", s)
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value in %q", s)
}

func parseLE(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func splitLabel(labels [][2]string, name string) (rest [][2]string, value string) {
	for _, kv := range labels {
		if kv[0] == name {
			value = kv[1]
			continue
		}
		rest = append(rest, kv)
	}
	return rest, value
}

func canonicalLabels(labels [][2]string) string {
	parts := make([]string, len(labels))
	for i, kv := range labels {
		parts[i] = kv[0] + "=" + kv[1]
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
