package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// This file is the span-tree tracer: the structured sibling of the flat
// WriterTracer/CollectTracer sinks. A TreeTracer captures every analysis
// as a real tree of timed spans — the request at the root, the analysis
// ("find/bdd") below it, and the solver phases (symeval, solve, decode)
// as leaves — each carrying attributes (model, backend, DAG fingerprint,
// verdict, solver counters). Trees export to Chrome trace-event JSON
// (chrome://tracing, Perfetto) via WriteChromeTrace, and serialize inline
// as SpanNode for the service's "trace": true responses.
//
// Concurrency: spans are safe for concurrent use. Parallel queries open
// parallel roots; concurrent children under one parent append under the
// parent's lock, so a child can never land in the wrong parent. Snapshots
// deep-copy under each span's lock, so a tree can be exported while late
// spans (e.g. a coalesced execution outliving its cancelled leader) are
// still completing.

// SpanNode is the plain, copyable form of one span in a captured trace
// tree: a name, a wall-clock interval, attributes, and child spans. It is
// what the verification service inlines in traced query responses.
type SpanNode struct {
	// Name identifies the span ("query", "find/bdd", "solve", ...).
	Name string `json:"name"`
	// StartUnixNS is the span's start in Unix nanoseconds.
	StartUnixNS int64 `json:"start_unix_ns"`
	// DurNS is the span's duration in nanoseconds (0 for instant events
	// and for spans still open when the tree was snapshotted).
	DurNS int64 `json:"dur_ns"`
	// Attrs carries span attributes (model, backend, verdict, counters).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Children are nested spans, in start order.
	Children []*SpanNode `json:"children,omitempty"`
}

// leafDurNS sums the durations of the node's leaf spans.
func (n *SpanNode) leafDurNS() int64 {
	if len(n.Children) == 0 {
		return n.DurNS
	}
	var sum int64
	for _, c := range n.Children {
		sum += c.leafDurNS()
	}
	return sum
}

// Find returns the first span named name in a pre-order walk of the
// subtree, or nil.
func (n *SpanNode) Find(name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// TreeSpan is one live span of a TreeTracer tree. It implements Span;
// Child opens a nested span, SetAttr attaches an attribute, and End
// closes the interval. All methods are safe for concurrent use.
type TreeSpan struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration // 0 until End
	ended    bool
	attrs    map[string]any
	children []*TreeSpan
}

// Child opens a nested span under s. Children may be opened concurrently
// (and even after s has ended — a late execution still records truthfully;
// it is simply absent from snapshots taken earlier).
func (s *TreeSpan) Child(name string) Span { return s.child(name) }

func (s *TreeSpan) child(name string) *TreeSpan {
	c := &TreeSpan{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr attaches an attribute to the span.
func (s *TreeSpan) SetAttr(key string, value any) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Event records an instant event as a zero-duration child span; args, if
// given, land in the child's "args" attribute.
func (s *TreeSpan) Event(name string, args ...any) {
	c := &TreeSpan{name: name, start: time.Now(), ended: true}
	if len(args) == 1 {
		c.attrs = map[string]any{"args": args[0]}
	} else if len(args) > 1 {
		c.attrs = map[string]any{"args": args}
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End closes the span's interval. Safe to call once; later children and
// attributes are still accepted (see Child).
func (s *TreeSpan) End() {
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Snapshot deep-copies the span subtree into plain SpanNodes. It locks
// each span only while copying it, so it is safe concurrently with
// ongoing recording.
func (s *TreeSpan) Snapshot() *SpanNode {
	s.mu.Lock()
	n := &SpanNode{
		Name:        s.name,
		StartUnixNS: s.start.UnixNano(),
		DurNS:       int64(s.dur),
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			n.Attrs[k] = v
		}
	}
	kids := append([]*TreeSpan(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		n.Children = append(n.Children, c.Snapshot())
	}
	return n
}

// TreeTracer captures analyses as nested span trees. It implements
// Tracer, so it can be attached anywhere a flat tracer could (zen
// WithTracer, fuzz campaigns, state-set worlds); each analysis becomes
// one root. For request-scoped tracing, open an explicit root with
// StartRoot and parent analysis spans under it with ChildTracer.
type TreeTracer struct {
	mu    sync.Mutex
	roots []*TreeSpan
}

// NewTreeTracer returns an empty tree tracer.
func NewTreeTracer() *TreeTracer { return &TreeTracer{} }

// StartSpan implements Tracer: each analysis opens a new root span.
func (t *TreeTracer) StartSpan(name string) Span { return t.StartRoot(name) }

// StartRoot opens a new root span and returns its concrete type, for
// callers that need SetAttr/Snapshot beyond the Span interface.
func (t *TreeTracer) StartRoot(name string) *TreeSpan {
	s := &TreeSpan{name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots snapshots every root span tree captured so far, in start order.
func (t *TreeTracer) Roots() []*SpanNode {
	t.mu.Lock()
	roots := append([]*TreeSpan(nil), t.roots...)
	t.mu.Unlock()
	out := make([]*SpanNode, len(roots))
	for i, r := range roots {
		out[i] = r.Snapshot()
	}
	return out
}

// ChildTracer adapts a live span into a Tracer whose spans become
// children of it. The verification service uses it to parent each
// query's solver-analysis span under the request's root span.
func ChildTracer(parent Span) Tracer { return childTracer{parent} }

type childTracer struct{ parent Span }

func (t childTracer) StartSpan(name string) Span { return t.parent.Child(name) }

// chromeEvent is one Chrome trace-event record. Complete events ("X")
// carry ts+dur; instant events ("i") mark zero-duration spans.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders span trees as Chrome trace-event JSON, the
// format chrome://tracing and Perfetto open directly. Each root tree is
// placed on its own track (tid), so parallel queries render side by
// side; nesting inside a track follows timestamp containment.
func WriteChromeTrace(w io.Writer, roots []*SpanNode) error {
	if len(roots) == 0 {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	epoch := roots[0].StartUnixNS
	for _, r := range roots {
		if r.StartUnixNS < epoch {
			epoch = r.StartUnixNS
		}
	}
	var events []chromeEvent
	var walk func(n *SpanNode, tid int)
	walk = func(n *SpanNode, tid int) {
		ev := chromeEvent{
			Name:  n.Name,
			Cat:   "zen",
			Phase: "X",
			TS:    float64(n.StartUnixNS-epoch) / 1e3,
			Dur:   float64(n.DurNS) / 1e3,
			PID:   1,
			TID:   tid,
			Args:  n.Attrs,
		}
		if n.DurNS == 0 && len(n.Children) == 0 {
			ev.Phase, ev.Dur, ev.Scope = "i", 0, "t"
		}
		events = append(events, ev)
		for _, c := range n.Children {
			walk(c, tid)
		}
	}
	for i, r := range roots {
		walk(r, i+1)
	}
	// Stable output: events sorted by (tid, ts, -dur) so parents precede
	// their children even at equal timestamps.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].Dur > events[j].Dur
	})
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// WriteChromeTraceFile is WriteChromeTrace against the given tracer's
// current roots, for the CLIs' -trace-out flag.
func (t *TreeTracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Roots())
}

// SumLeafDurNS sums leaf-span durations of a tree — a consistency probe
// used by tests: leaves partition the instrumented portion of the root,
// so their sum never exceeds the root duration (within scheduling skew).
func SumLeafDurNS(n *SpanNode) int64 { return n.leafDurNS() }

var _ Tracer = (*TreeTracer)(nil)
var _ Span = (*TreeSpan)(nil)

// String renders a compact one-line-per-span view, for debugging.
func (n *SpanNode) String() string {
	var b []byte
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, fmt.Sprintf("%s (%v)", n.Name, time.Duration(n.DurNS).Round(time.Microsecond))...)
		b = append(b, '\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return string(b)
}
