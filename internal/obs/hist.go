package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary latency histogram with lock-free
// observation: one atomic counter per bucket plus an atomic sum/count
// pair. It replaces the sampled p50/p99 latency ring of the service
// layer — histograms merge across goroutines and processes, export
// directly as Prometheus bucket series, and answer any quantile (with
// bucket-interpolation accuracy) instead of two fixed ones.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending; +Inf implicit
	counts []atomic.Int64
	sumNS  atomic.Int64
	count  atomic.Int64
}

// DefaultLatencyBounds spans 100µs to 30s exponentially — wide enough
// for a cache hit on the left and a deadline-bounded solve on the right.
func DefaultLatencyBounds() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (seconds). A final +Inf bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	// Linear scan: the bounds list is short and the early buckets are the
	// hot ones; a binary search costs more in branch misses than it saves.
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// Merge adds another histogram's counts into h. The two must share
// boundaries (merging histograms with different buckets is a modeling
// error, so it panics). Safe under concurrent Observe on either side.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("obs: Histogram.Merge: boundary mismatch")
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.sumNS.Add(o.sumNS.Load())
	h.count.Add(o.count.Load())
}

// HistogramSnapshot is a plain copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds (no +Inf entry).
	Bounds []float64
	// Counts are per-bucket (non-cumulative) counts; len(Bounds)+1, the
	// last being the +Inf bucket.
	Counts []int64
	// SumSeconds and Count aggregate all observations.
	SumSeconds float64
	Count      int64
}

// Snapshot copies the histogram's counters. Concurrent observations may
// land between bucket reads; each bucket is individually exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumSeconds = float64(h.sumNS.Load()) / 1e9
	s.Count = h.count.Load()
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation within the bucket holding the target rank; observations
// in the +Inf bucket clamp to the largest finite bound. Returns 0 when
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Quantile is the snapshot form of Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramVec is a set of histograms keyed by label values (e.g. model,
// backend, verdict), sharing one boundary layout — the Prometheus
// histogram-vector shape. Lookups take a read lock; observation on the
// returned histogram is lock-free.
type HistogramVec struct {
	labels []string
	bounds []float64

	mu sync.RWMutex
	m  map[string]*vecEntry
}

type vecEntry struct {
	values []string
	h      *Histogram
}

// NewHistogramVec builds a histogram vector with the given label names
// and bucket bounds.
func NewHistogramVec(bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		m:      make(map[string]*vecEntry),
	}
}

// Labels returns the label names.
func (v *HistogramVec) Labels() []string { return v.labels }

// With returns the histogram for the given label values, creating it on
// first use. len(values) must equal len(labels).
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic("obs: HistogramVec.With: label arity mismatch")
	}
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	e, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return e.h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if e, ok := v.m[key]; ok {
		return e.h
	}
	e = &vecEntry{values: append([]string(nil), values...), h: NewHistogram(v.bounds)}
	v.m[key] = e
	return e.h
}

// VecSeries is one labeled histogram snapshot of a HistogramVec.
type VecSeries struct {
	Values []string
	Hist   HistogramSnapshot
}

// Snapshot copies every labeled histogram, sorted by label values for
// stable exposition output.
func (v *HistogramVec) Snapshot() []VecSeries {
	v.mu.RLock()
	entries := make([]*vecEntry, 0, len(v.m))
	for _, e := range v.m {
		entries = append(entries, e)
	}
	v.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		return strings.Join(entries[i].values, "\x1f") < strings.Join(entries[j].values, "\x1f")
	})
	out := make([]VecSeries, len(entries))
	for i, e := range entries {
		out[i] = VecSeries{Values: e.values, Hist: e.h.Snapshot()}
	}
	return out
}
