package portfolio

import (
	"sync"

	"zen-go/internal/sat"
)

// maxPoolClauses bounds the exchange: a pathological solve exporting
// millions of short clauses must not hold them all live. Beyond the cap
// new publications are dropped; the per-solver Exported counters still
// record the attempt, so telemetry shows the pressure.
const maxPoolClauses = 1 << 14

// exchange is the clause-sharing pool between SAT workers: an
// append-only log of published clauses with a read cursor per worker.
// A worker taking from the pool receives every clause published since
// its last take, minus its own publications.
type exchange struct {
	mu      sync.Mutex
	clauses [][]sat.Lit
	owner   []int
	cursor  []int
}

func newExchange(workers int) *exchange {
	return &exchange{cursor: make([]int, workers)}
}

// publish appends one clause. The slice is retained; callers must pass
// a private copy (sat.Solver's LearnHook already does).
func (e *exchange) publish(w int, lits []sat.Lit) {
	e.mu.Lock()
	if len(e.clauses) < maxPoolClauses {
		e.clauses = append(e.clauses, lits)
		e.owner = append(e.owner, w)
	}
	e.mu.Unlock()
}

// take returns the clauses worker w has not seen and did not publish,
// advancing its cursor.
func (e *exchange) take(w int) [][]sat.Lit {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out [][]sat.Lit
	for i := e.cursor[w]; i < len(e.clauses); i++ {
		if e.owner[i] != w {
			out = append(out, e.clauses[i])
		}
	}
	e.cursor[w] = len(e.clauses)
	return out
}
