// Race and leak stress tests for the portfolio backend, driven through
// the public zen API (an external test package, so no import cycle).
// scripts/check.sh runs this package under -race.
package portfolio_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"zen-go/zen"
)

func incFn() *zen.Fn[uint8, uint8] {
	return zen.Func(func(x zen.Value[uint8]) zen.Value[uint8] {
		return zen.AddC(x, 1)
	})
}

// hardFn is expensive enough on every strategy that a short deadline
// reliably expires mid-race: a 32-bit symbolic square.
func hardFn() *zen.Fn[uint32, uint32] {
	return zen.Func(func(x zen.Value[uint32]) zen.Value[uint32] {
		return zen.Mul(x, x)
	})
}

func TestPortfolioFindAgreesWithBackends(t *testing.T) {
	fn := incFn()
	pred := func(in zen.Value[uint8], out zen.Value[uint8]) zen.Value[bool] {
		return zen.EqC(out, uint8(7))
	}
	w, found := fn.Find(pred, zen.WithPortfolio(), zen.WithPortfolioWorkers(3))
	if !found || w != 6 {
		t.Fatalf("portfolio Find = (%d, %v), want (6, true)", w, found)
	}
	for _, be := range []zen.Backend{zen.BDD, zen.SAT} {
		bw, bfound := fn.Find(pred, zen.WithBackend(be))
		if bfound != found || bw != w {
			t.Fatalf("%v disagrees with portfolio: (%d, %v) vs (%d, %v)", be, bw, bfound, w, found)
		}
	}
}

func TestPortfolioUnsatVerdict(t *testing.T) {
	valid, cex := incFn().Verify(func(in zen.Value[uint8], out zen.Value[uint8]) zen.Value[bool] {
		return zen.Eq(out, zen.AddC(in, 1))
	}, zen.WithPortfolio())
	if !valid {
		t.Fatalf("tautology reported invalid, cex = %d", cex)
	}
}

func TestPortfolioFindAllDistinct(t *testing.T) {
	ws := incFn().FindAll(func(in zen.Value[uint8], out zen.Value[uint8]) zen.Value[bool] {
		return zen.LtC(in, uint8(5))
	}, 10, zen.WithPortfolio(), zen.WithPortfolioWorkers(2))
	if len(ws) != 5 {
		t.Fatalf("FindAll found %d witnesses, want 5", len(ws))
	}
	seen := map[uint8]bool{}
	for _, w := range ws {
		if w >= 5 {
			t.Fatalf("witness %d violates the predicate", w)
		}
		if seen[w] {
			t.Fatalf("witness %d repeated", w)
		}
		seen[w] = true
	}
}

func TestPortfolioFn2Find(t *testing.T) {
	fn := zen.Func2(func(a, b zen.Value[uint8]) zen.Value[uint8] {
		return zen.Add(a, b)
	})
	a, b, found := fn.Find(func(x, y zen.Value[uint8], out zen.Value[uint8]) zen.Value[bool] {
		return zen.And(zen.EqC(out, uint8(10)), zen.EqC(x, uint8(3)))
	}, zen.WithPortfolio())
	if !found || a != 3 || a+b != 10 {
		t.Fatalf("Fn2 portfolio Find = (%d, %d, %v), want a=3, a+b=10", a, b, found)
	}
}

func TestPortfolioProblemNextModel(t *testing.T) {
	p := zen.NewProblem(zen.WithPortfolio(), zen.WithPortfolioWorkers(2))
	x := zen.ProblemVar[uint8](p, "x")
	y := zen.ProblemVar[uint8](p, "y")
	p.Require(zen.EqC(zen.Add(x, y), uint8(4)))
	p.Require(zen.LtC(x, uint8(2)))
	if !p.Solve() {
		t.Fatalf("x + y == 4 && x < 2 must be satisfiable")
	}
	type model struct{ x, y uint8 }
	seen := map[model]bool{}
	for ok := true; ok; ok = p.NextModel() {
		m := model{zen.Get(p, x), zen.Get(p, y)}
		if m.x+m.y != 4 || m.x >= 2 {
			t.Fatalf("model %+v violates the constraints", m)
		}
		if seen[m] {
			t.Fatalf("model %+v repeated; NextModel blocking failed", m)
		}
		seen[m] = true
	}
	if len(seen) != 2 {
		t.Fatalf("enumerated %d models, want 2 (x in {0,1})", len(seen))
	}
}

func TestPortfolioFindRaw(t *testing.T) {
	fn := incFn()
	var q zen.Queryable = fn
	args := q.QueryArgs()
	b := zen.Builder()
	cond := b.Eq(q.QueryOut(), b.BVConst(q.QueryOut().Type, 9))
	ms, err := zen.FindAllRaw(context.Background(), cond, args, 5, zen.WithPortfolio())
	if err != nil || len(ms) != 1 {
		t.Fatalf("FindAllRaw = (%d models, %v), want exactly 1", len(ms), err)
	}
	if in := ms[0][args[0].VarID]; in.U != 8 {
		t.Fatalf("witness = %d, want 8", in.U)
	}
}

// TestPortfolioDeadlineMidRaceNeverVacuous: a deadline expiring mid-race
// must surface as an error — never as "no witness" (which Verify would
// read as vacuous validity).
func TestPortfolioDeadlineMidRaceNeverVacuous(t *testing.T) {
	const deadline = 50 * time.Millisecond
	ctx, cancelFn := context.WithTimeout(context.Background(), deadline)
	defer cancelFn()
	start := time.Now()
	_, found, err := hardFn().FindCtx(ctx, func(in, out zen.Value[uint32]) zen.Value[bool] {
		return zen.EqC(out, uint32(3037000493))
	}, zen.WithPortfolio(), zen.WithPortfolioWorkers(2))
	elapsed := time.Since(start)
	if err == nil {
		t.Skipf("query finished in %v on this machine; cannot exercise the deadline", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if found {
		t.Fatalf("cancelled portfolio Find must not report a witness")
	}
	if elapsed > 20*deadline {
		t.Fatalf("FindCtx returned after %v, deadline was %v", elapsed, deadline)
	}
}

func TestPortfolioAlreadyCancelled(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	_, found, err := hardFn().FindCtx(ctx, func(in, out zen.Value[uint32]) zen.Value[bool] {
		return zen.EqC(out, uint32(3037000493))
	}, zen.WithPortfolio())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if found {
		t.Fatalf("cancelled portfolio Find must not report a witness")
	}
}

// TestPortfolioConcurrentNoGoroutineLeak runs many portfolio queries in
// parallel and checks that every strategy goroutine exits: Run promises
// not to return before its losers are torn down.
func TestPortfolioConcurrentNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	fn := incFn()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := uint8(i)
			w, found := fn.Find(func(in, out zen.Value[uint8]) zen.Value[bool] {
				return zen.EqC(out, target)
			}, zen.WithPortfolio(), zen.WithPortfolioWorkers(3))
			if !found || w != target-1 {
				t.Errorf("query %d: Find = (%d, %v), want (%d, true)", i, w, found, target-1)
			}
		}(i)
	}
	wg.Wait()
	// Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after portfolio queries; losers leaked",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPortfolioDeadlineLeavesNoGoroutines: the loser-teardown promise
// holds on the failure path too — a race that dies to a deadline must
// still unwind every strategy before FindCtx returns.
func TestPortfolioDeadlineLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancelFn := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancelFn()
	_, _, err := hardFn().FindCtx(ctx, func(in, out zen.Value[uint32]) zen.Value[bool] {
		return zen.EqC(out, uint32(3037000493))
	}, zen.WithPortfolio(), zen.WithPortfolioWorkers(3))
	if err == nil {
		t.Skip("query finished before the deadline; cannot exercise teardown")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled race", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPortfolioStatsFlow(t *testing.T) {
	var stats zen.Stats
	fn := incFn()
	_, found := fn.Find(func(in, out zen.Value[uint8]) zen.Value[bool] {
		return zen.EqC(out, uint8(9))
	}, zen.WithPortfolio(), zen.WithStats(&stats))
	if !found {
		t.Fatalf("satisfiable query reported unsat")
	}
	snap := stats.Snapshot()
	if snap.Portfolio.Races != 1 {
		t.Fatalf("stats races = %d, want 1", snap.Portfolio.Races)
	}
	var wins int64
	for _, n := range snap.Portfolio.WinsBy {
		wins += n
	}
	if wins != 1 {
		t.Fatalf("stats wins = %d, want 1", wins)
	}
}
