package portfolio

import (
	"errors"
	"testing"

	"zen-go/internal/core"
	"zen-go/internal/obs"
	"zen-go/internal/sat"
)

func testRec() *obs.Rec { return obs.Begin(nil, nil, "portfolio", "test") }

func lits(vs ...int) []sat.Lit {
	ls := make([]sat.Lit, len(vs))
	for i, v := range vs {
		ls[i] = sat.MkLit(v, false)
	}
	return ls
}

func TestExchangeExcludesOwnClauses(t *testing.T) {
	ex := newExchange(2)
	ex.publish(0, lits(0))
	ex.publish(1, lits(1))
	got := ex.take(0)
	if len(got) != 1 || got[0][0] != sat.MkLit(1, false) {
		t.Fatalf("worker 0 take = %v, want only worker 1's clause", got)
	}
	if again := ex.take(0); again != nil {
		t.Fatalf("second take must be empty (cursor advanced), got %v", again)
	}
	// Worker 1 sees worker 0's clause but not its own.
	got = ex.take(1)
	if len(got) != 1 || got[0][0] != sat.MkLit(0, false) {
		t.Fatalf("worker 1 take = %v, want only worker 0's clause", got)
	}
}

func TestExchangeCap(t *testing.T) {
	ex := newExchange(2)
	for i := 0; i < maxPoolClauses+100; i++ {
		ex.publish(0, lits(i%7))
	}
	if n := len(ex.clauses); n != maxPoolClauses {
		t.Fatalf("pool holds %d clauses, cap is %d", n, maxPoolClauses)
	}
}

// TestImportGateAfterStop is the clause-routing soundness check of the
// ISSUE: a shared clause must never land in a worker whose race has been
// cancelled. The import hook is gated on the race's stop flag.
func TestImportGateAfterStop(t *testing.T) {
	st := &state{}
	st.winner.Store(-1)
	ex := newExchange(2)
	s := sat.New()
	s.NewVar()
	wireExchange(s, ex, 0, st)

	ex.publish(1, lits(0))
	if got := s.ImportHook(); len(got) != 1 {
		t.Fatalf("before stop: import = %v, want 1 clause", got)
	}
	ex.publish(1, lits(0))
	st.stop.Trigger(nil)
	if got := s.ImportHook(); got != nil {
		t.Fatalf("after stop: import = %v, want nil (stopped workers import nothing)", got)
	}
}

func bv8Query(build func(b *core.Builder, x *core.Node, ty *core.Type) *core.Node) (Query, int32) {
	b := core.NewBuilder()
	ty := core.BV(8, false)
	x := b.Var(ty, "x")
	cond := build(b, x, ty)
	return Query{Cond: cond, Vars: []VarSpec{{ID: x.VarID, Type: ty, Bound: 4, Name: "x"}}}, x.VarID
}

func TestRunSat(t *testing.T) {
	q, id := bv8Query(func(b *core.Builder, x *core.Node, ty *core.Type) *core.Node {
		return b.Eq(x, b.BVConst(ty, 42))
	})
	rec := testRec()
	defer rec.End()
	sess, err := Run(q, Config{SATWorkers: 2}, rec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sess.Found() {
		t.Fatalf("x == 42 must be satisfiable")
	}
	if got := sess.Model(id).U; got != 42 {
		t.Fatalf("model x = %d, want 42", got)
	}
	if w := sess.Winner(); w != "bdd" && w != "sat" {
		t.Fatalf("winner = %q, want bdd or sat", w)
	}
	out := sess.Outcome()
	if out.Races != 1 {
		t.Fatalf("outcome races = %d, want 1", out.Races)
	}
	var wins int64
	for _, n := range out.WinsBy {
		wins += n
	}
	if wins != 1 {
		t.Fatalf("outcome wins = %d, want exactly 1", wins)
	}
	if out.LoserAborts < 0 || out.LoserAbortNs < 0 {
		t.Fatalf("negative loser telemetry: %+v", out)
	}
}

func TestRunUnsat(t *testing.T) {
	q, _ := bv8Query(func(b *core.Builder, x *core.Node, ty *core.Type) *core.Node {
		return b.And(b.Eq(x, b.BVConst(ty, 1)), b.Eq(x, b.BVConst(ty, 2)))
	})
	rec := testRec()
	defer rec.End()
	sess, err := Run(q, Config{SATWorkers: 2}, rec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sess.Found() {
		t.Fatalf("x == 1 && x == 2 must be unsat")
	}
	if sess.Next(nil, testRec()) {
		t.Fatalf("Next on an unsat session must report false")
	}
}

func TestRunNextEnumerates(t *testing.T) {
	q, id := bv8Query(func(b *core.Builder, x *core.Node, ty *core.Type) *core.Node {
		return b.Lt(x, b.BVConst(ty, 3))
	})
	rec := testRec()
	defer rec.End()
	sess, err := Run(q, Config{SATWorkers: 2}, rec)
	if err != nil || !sess.Found() {
		t.Fatalf("Run = (%v, %v), want sat", sess, err)
	}
	seen := map[uint64]bool{}
	for ok := true; ok; ok = sess.Next(nil, rec) {
		v := sess.Model(id).U
		if v >= 3 {
			t.Fatalf("model x = %d violates x < 3", v)
		}
		if seen[v] {
			t.Fatalf("model x = %d repeated; blocking constraint failed", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("enumerated %d models, want 3", len(seen))
	}
}

func TestRunCancelledReturnsError(t *testing.T) {
	// The query must be hard enough that no strategy finishes before its
	// first poll point: a trivial race may legitimately complete with a
	// sound verdict even under a dead check. A 32-bit symbolic square is
	// far past every backend's polling interval.
	boom := errors.New("boom")
	b := core.NewBuilder()
	ty := core.BV(32, false)
	x := b.Var(ty, "x")
	cond := b.Eq(b.Mul(x, x), b.BVConst(ty, 3037000493))
	q := Query{Cond: cond, Vars: []VarSpec{{ID: x.VarID, Type: ty, Bound: 4, Name: "x"}}}
	rec := testRec()
	defer rec.End()
	sess, err := Run(q, Config{SATWorkers: 2, Check: func() error { return boom }}, rec)
	if !errors.Is(err, boom) {
		t.Fatalf("Run under a dead check: err = %v, want %v", err, boom)
	}
	if sess != nil {
		t.Fatalf("Run must not return a session alongside an error")
	}
}

func TestConfigWorkersDefault(t *testing.T) {
	if n := (Config{}).workers(); n < 1 || n > 4 {
		t.Fatalf("default workers = %d, want 1..4", n)
	}
	if n := (Config{SATWorkers: 7}).workers(); n != 7 {
		t.Fatalf("explicit workers = %d, want 7", n)
	}
}
