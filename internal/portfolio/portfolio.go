// Package portfolio races solver strategies over one hash-consed
// predicate DAG and answers with the first definitive verdict.
//
// Two observations from EXPERIMENTS.md motivate it: the winning backend
// flips by workload (BDDs win the Figure 10 reachability shapes, SAT
// wins the Anteater-style per-path checks), and no single heuristic
// configuration of the CDCL search is uniformly best. The portfolio
// therefore runs, concurrently:
//
//   - a BDD strategy: encode the DAG into a fresh BDD manager and solve;
//   - N diversified SAT workers: encode once (Tseitin), clone the solver
//     per worker, perturb each clone's search (seed, random-decision
//     frequency, VSIDS decay, saved phases), and share short learned
//     clauses through an exchange all workers drain at restarts.
//
// The first strategy to return Sat or Unsat claims the race; the rest
// are torn down through the internal/cancel protocol (each loser's next
// poll point unwinds it). A deadline that expires mid-race yields an
// error — never a vacuous verdict. Sharing is sound because learned
// clauses are consequences of the problem clauses alone (see
// internal/sat).
//
// The winner stays alive as a Session: FindAll enumeration and
// NextModel sweeps keep re-solving on the winning solver under blocking
// constraints, reusing its learned clauses instead of restarting.
package portfolio

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zen-go/internal/backends"
	"zen-go/internal/bdd"
	"zen-go/internal/cancel"
	"zen-go/internal/core"
	"zen-go/internal/interp"
	"zen-go/internal/obs"
	"zen-go/internal/sat"
	"zen-go/internal/sym"
)

// VarSpec declares one symbolic input of a query. Allocation order
// follows the slice, so identical specs produce identical encodings in
// every strategy (and across runs: Tseitin numbering is deterministic).
type VarSpec struct {
	ID    int32
	Type  *core.Type
	Bound int
	Name  string
}

// Query is one first-model search over a predicate DAG.
type Query struct {
	Cond *core.Node
	Vars []VarSpec
}

// Config tunes a portfolio run.
type Config struct {
	// SATWorkers is the number of diversified SAT workers; 0 selects
	// max(1, min(4, GOMAXPROCS-1)). The BDD strategy always runs too, so
	// a race has SATWorkers+1 participants.
	SATWorkers int
	// Check is the caller's cancellation (typically derived from a
	// context). Every strategy polls it merged with the race's internal
	// stop signal.
	Check cancel.Check
}

func (c Config) workers() int {
	if c.SATWorkers > 0 {
		return c.SATWorkers
	}
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	return n
}

// Session is the outcome of a race, pinned to the winning strategy.
// After a Sat verdict, Next keeps enumerating distinct models on the
// winner's live solver state. Sessions are not safe for concurrent use.
type Session struct {
	found   bool
	models  map[int32]*interp.Value
	next    func(chk cancel.Check) bool
	report  func(*obs.Rec)
	winner  string
	outcome obs.PortfolioStats
}

// Found reports the race verdict: true when a model exists.
func (s *Session) Found() bool { return s.found }

// Winner names the strategy that answered first ("bdd" or "sat").
func (s *Session) Winner() string { return s.winner }

// Outcome returns the race telemetry.
func (s *Session) Outcome() obs.PortfolioStats { return s.outcome }

// Model returns the decoded value of one declared input in the current
// model. It panics outside a Found session.
func (s *Session) Model(id int32) *interp.Value {
	if !s.found {
		panic("portfolio: Model on an unsat session")
	}
	return s.models[id]
}

// Models returns the full current model keyed by input ID.
func (s *Session) Models() map[int32]*interp.Value { return s.models }

// Next re-solves on the winning strategy under a blocking constraint
// ("some input differs from the current model"), replacing the model
// read by Model. Learned clauses persist across calls, so enumerating k
// models is strictly cheaper than k independent races. The solve is
// counted into rec (which may differ from the race's record: NextModel
// opens a fresh one per call). Cancellation unwinds with cancel.Abort
// like any solver call; trap it at the API boundary.
func (s *Session) Next(chk cancel.Check, rec *obs.Rec) bool {
	if !s.found {
		return false
	}
	ok := s.next(chk)
	rec.CountSolve(ok)
	return ok
}

// Report harvests the winning backend's counters into the record. The
// counters are cumulative since the race began, so report once per
// record (matching how the single-backend paths report).
func (s *Session) Report(rec *obs.Rec) { s.report(rec) }

// ErrNoStrategy is returned when every strategy exited without a verdict
// and without a recorded cause (it indicates a portfolio bug; callers
// should treat it like cancellation).
var ErrNoStrategy = errors.New("portfolio: no strategy produced a verdict")

// state is the shared coordination block of one race.
type state struct {
	stop    cancel.Stop // trips when a winner claims
	failure cancel.Stop // first loss cause (ctx death), for the no-winner path
	winner  atomic.Int32
	res     *result      // written by the winner before stop trips, read after wg.Wait
	claimed atomic.Int64 // UnixNano of the winning claim
}

// result is the winner's continuation, built in its goroutine and
// consumed on the caller's after the race settles.
type result struct {
	strategy string
	found    bool
	decode   func() map[int32]*interp.Value
	next     func(prev map[int32]*interp.Value, chk cancel.Check) (map[int32]*interp.Value, bool)
	report   func(*obs.Rec)
}

func (st *state) claim(idx int32, r *result) bool {
	if !st.winner.CompareAndSwap(-1, idx) {
		return false
	}
	st.res = r
	st.claimed.Store(time.Now().UnixNano())
	st.stop.Trigger(nil)
	return true
}

// Run races the strategies on the query and returns the winning session.
// It returns an error only when no strategy answered — in practice when
// the caller's Check tripped (deadline, cancellation) mid-race. Run does
// not return until every strategy goroutine has exited, so a returned
// Session owns its solver exclusively and callers never leak goroutines.
func Run(q Query, cfg Config, rec *obs.Rec) (*Session, error) {
	stopPhase := rec.Phase("race")
	st := &state{}
	st.winner.Store(-1)
	raceChk := cancel.Merge(cfg.Check, st.stop.Check())

	nSAT := cfg.workers()
	satSolvers := make([]*sat.Solver, 0, nSAT)
	var satMu sync.Mutex

	var wg sync.WaitGroup
	wg.Add(2)
	go runBDD(q, st, raceChk, &wg)
	go runSATPool(q, st, raceChk, nSAT, &satMu, &satSolvers, &wg)
	wg.Wait()
	stopPhase()

	widx := st.winner.Load()
	outcome := obs.PortfolioStats{Races: 1}
	satMu.Lock()
	for _, s := range satSolvers {
		sst := s.Stats()
		outcome.ClausesShared += sst.Exported
		outcome.ClausesImported += sst.Imported
	}
	started := int64(1 + len(satSolvers)) // BDD plus every launched worker
	satMu.Unlock()
	if widx < 0 {
		err := st.failure.Err()
		if err == nil {
			err = ErrNoStrategy
		}
		return nil, err
	}
	outcome.WinsBy = map[string]int64{st.res.strategy: 1}
	outcome.LoserAborts = started - 1
	if t := st.claimed.Load(); t > 0 {
		outcome.LoserAbortNs = time.Now().UnixNano() - t
	}
	rec.AddPortfolio(outcome)
	rec.CountSolve(st.res.found)

	sess := &Session{
		found:   st.res.found,
		winner:  st.res.strategy,
		outcome: outcome,
		report:  st.res.report,
	}
	if st.res.found {
		stop := rec.Phase("decode")
		sess.models = st.res.decode()
		stop()
		res := st.res
		sess.next = func(chk cancel.Check) bool {
			models, ok := res.next(sess.models, chk)
			if ok {
				sess.models = models
			}
			return ok
		}
	}
	return sess, nil
}

// encode allocates the query's inputs in the algebra and evaluates the
// condition symbolically.
func encode[B comparable](alg sym.Algebra[B], q Query, chk cancel.Check) (map[int32]*sym.Input[B], B) {
	env := sym.Env[B]{}
	inputs := make(map[int32]*sym.Input[B], len(q.Vars))
	for _, v := range q.Vars {
		in := sym.Fresh(alg, v.Type, v.Bound, v.Name)
		env[v.ID] = in.Val
		inputs[v.ID] = in
	}
	out := sym.EvalCheck(alg, q.Cond, env, chk)
	return inputs, out.Bit
}

// finishRace is the shared tail of every strategy: solve, claim on a
// definitive verdict, and package the winner's continuation. The
// constraint is captured by reference so Next conjoins blocking clauses
// incrementally on the live solver.
func finishRace[B comparable](idx int32, strategy string, alg sym.Solver[B], inputs map[int32]*sym.Input[B], constraint B, st *state, chk cancel.Check) {
	ok := alg.Solve(constraint)
	cur := constraint
	st.claim(idx, &result{
		strategy: strategy,
		found:    ok,
		decode: func() map[int32]*interp.Value {
			return sym.DecodeModel(inputs, alg.BitValue)
		},
		next: func(prev map[int32]*interp.Value, chk cancel.Check) (map[int32]*interp.Value, bool) {
			armInterrupt(alg, chk)
			differs := falseOf(alg)
			for id, in := range inputs {
				differs = alg.Or(differs, sym.BlockModel(alg, in.Val, prev[id]))
			}
			cur = alg.And(cur, differs)
			if !alg.Solve(cur) {
				return nil, false
			}
			return sym.DecodeModel(inputs, alg.BitValue), true
		},
		report: func(rec *obs.Rec) { rec.ReportBackend(alg) },
	})
}

func falseOf[B comparable](alg sym.Algebra[B]) B { return alg.False() }

func armInterrupt(alg any, chk cancel.Check) {
	if i, ok := alg.(backends.Interruptible); ok {
		i.SetInterrupt(chk)
	}
}

// lost records a strategy's abort cause and swallows the cancel.Abort
// unwind; any other panic propagates.
func lost(st *state) {
	switch r := recover().(type) {
	case nil:
	case cancel.Abort:
		st.failure.Trigger(r.Err)
	default:
		panic(r)
	}
}

// runBDD is the BDD strategy: private manager, encode, solve.
func runBDD(q Query, st *state, chk cancel.Check, wg *sync.WaitGroup) {
	defer wg.Done()
	defer lost(st)
	alg := backends.NewBDD()
	armInterrupt(alg, chk)
	inputs, constraint := encode[bdd.Ref](alg, q, chk)
	finishRace[bdd.Ref](0, "bdd", alg, inputs, constraint, st, chk)
}

// runSATPool is the SAT strategy: encode once, clone the solver per
// worker, diversify, and race the clones with clause sharing.
func runSATPool(q Query, st *state, chk cancel.Check, n int, mu *sync.Mutex, solvers *[]*sat.Solver, wg *sync.WaitGroup) {
	defer wg.Done()
	defer lost(st)

	base := backends.NewSAT()
	armInterrupt(base, chk)
	inputs, constraint := encode[sat.Lit](base, q, chk)

	// Clone every worker before any of them starts solving: Clone reads
	// the base solver's state, which worker 0 mutates once racing.
	ex := newExchange(n)
	workers := make([]*sat.Solver, n)
	for w := 0; w < n; w++ {
		if w == 0 {
			workers[w] = base.S
		} else {
			workers[w] = base.S.Clone()
			diversify(workers[w], w)
		}
		workers[w].Interrupt = chk
		wireExchange(workers[w], ex, w, st)
	}
	mu.Lock()
	*solvers = append(*solvers, workers...)
	mu.Unlock()

	var inner sync.WaitGroup
	for w := 0; w < n; w++ {
		inner.Add(1)
		go func(w int, alg *backends.SAT) {
			defer inner.Done()
			defer lost(st)
			finishRace[sat.Lit](1+int32(w), "sat", alg, inputs, constraint, st, chk)
		}(w, base.WithSolver(workers[w]))
	}
	inner.Wait()

	// Detach the exchange from the winner so the enumeration session
	// neither exports to nor imports from a dead pool.
	if idx := st.winner.Load(); idx >= 1 {
		mu.Lock()
		winner := (*solvers)[idx-1]
		mu.Unlock()
		winner.LearnHook = nil
		winner.ImportHook = nil
	}
}

// diversify perturbs a cloned worker's search heuristics. Worker 0 (the
// base solver) keeps the default configuration, so a one-worker
// portfolio behaves exactly like the plain SAT backend.
func diversify(s *sat.Solver, w int) {
	s.Seed = uint64(w)*0x9e3779b97f4a7c15 + 1
	s.RandFreq = 0.02 * float64(w)
	s.VarDecay = 0.95 - 0.02*float64(w%3)
	s.ScramblePolarity(uint64(w) * 0x2545f4914f6cdd1d)
}

// wireExchange connects a worker to the clause exchange. The import hook
// checks the race's stop flag first: a shared clause must never land in
// a cancelled worker, so a worker whose race is over always imports
// nothing.
func wireExchange(s *sat.Solver, ex *exchange, w int, st *state) {
	s.LearnHook = func(lits []sat.Lit) { ex.publish(w, lits) }
	s.ImportHook = func() [][]sat.Lit {
		if st.stop.Stopped() {
			return nil
		}
		return ex.take(w)
	}
}
