package compilejit

import (
	"math/rand"
	"testing"

	"zen-go/internal/core"
	"zen-go/internal/interp"
)

var u8 = core.BV(8, false)

// randExpr builds a random scalar expression over two u8 inputs.
func randExpr(b *core.Builder, rng *rand.Rand, x, y *core.Node, depth int) *core.Node {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return x
		case 1:
			return y
		default:
			return b.BVConst(u8, uint64(rng.Intn(256)))
		}
	}
	a := randExpr(b, rng, x, y, depth-1)
	c := randExpr(b, rng, x, y, depth-1)
	switch rng.Intn(7) {
	case 0:
		return b.Add(a, c)
	case 1:
		return b.Sub(a, c)
	case 2:
		return b.Mul(a, c)
	case 3:
		return b.BXor(a, c)
	case 4:
		return b.If(b.Lt(a, c), a, c)
	case 5:
		return b.BOr(b.Shl(a, 1), b.Shr(c, 1))
	default:
		return b.If(b.Eq(a, c), b.BNot(a), c)
	}
}

func TestCompiledMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		b := core.NewBuilder()
		x := b.Var(u8, "x")
		y := b.Var(u8, "y")
		expr := randExpr(b, rng, x, y, 4)
		prog := Compile(expr, x, y)
		for i := 0; i < 32; i++ {
			xv := uint64(rng.Intn(256))
			yv := uint64(rng.Intn(256))
			got := prog.Run(interp.BV(u8, xv), interp.BV(u8, yv))
			want := interp.Eval(expr, interp.Env{
				x.VarID: interp.BV(u8, xv), y.VarID: interp.BV(u8, yv)})
			if !got.Equal(want) {
				t.Fatalf("trial %d: compiled=%v interp=%v at x=%d y=%d",
					trial, got, want, xv, yv)
			}
		}
	}
}

func TestCompiledSharedDAGEvaluatesOnce(t *testing.T) {
	// 2^30-deep sharing must compile to a linear program.
	b := core.NewBuilder()
	u64 := core.BV(64, false)
	x := b.Var(u64, "x")
	e := x
	for i := 0; i < 30; i++ {
		e = b.Add(e, e)
	}
	prog := Compile(e, x)
	if got := prog.Run(interp.BV(u64, 1)); got.U != 1<<30 {
		t.Fatalf("got %d, want 2^30", got.U)
	}
	if len(prog.instrs) > 40 {
		t.Fatalf("shared DAG compiled to %d instructions; sharing lost", len(prog.instrs))
	}
}

func TestCompiledNestedLists(t *testing.T) {
	b := core.NewBuilder()
	lt := core.List(u8)
	l := b.Var(lt, "l")
	// Sum with nested case up to depth 4.
	var sum func(n *core.Node, d int) *core.Node
	sum = func(n *core.Node, d int) *core.Node {
		if d == 0 {
			return b.BVConst(u8, 0)
		}
		return b.ListCase(n, b.BVConst(u8, 0), func(h, tl *core.Node) *core.Node {
			return b.Add(h, sum(tl, d-1))
		})
	}
	prog := Compile(sum(l, 4), l)
	in := interp.List(lt, interp.BV(u8, 1), interp.BV(u8, 2), interp.BV(u8, 3))
	if got := prog.Run(in); got.U != 6 {
		t.Fatalf("sum = %d, want 6", got.U)
	}
	if got := prog.Run(interp.List(lt)); got.U != 0 {
		t.Fatalf("empty sum = %d, want 0", got.U)
	}
}

func TestCompiledObjects(t *testing.T) {
	b := core.NewBuilder()
	hdr := core.Object("H", core.Field{Name: "A", Type: u8}, core.Field{Name: "B", Type: core.Bool()})
	o := b.Var(hdr, "o")
	expr := b.WithField(o, 0, b.Add(b.GetField(o, 0), b.BVConst(u8, 1)))
	prog := Compile(expr, o)
	in := interp.Object(hdr, interp.BV(u8, 9), interp.Bool(true))
	got := prog.Run(in)
	if got.Fields[0].U != 10 || !got.Fields[1].B {
		t.Fatalf("got %v", got)
	}
}

func TestCompileUnboundVarPanics(t *testing.T) {
	b := core.NewBuilder()
	x := b.Var(u8, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compile(b.Add(x, x)) // x not declared as input
}

func BenchmarkCompiledVsInterp(b *testing.B) {
	bb := core.NewBuilder()
	rng := rand.New(rand.NewSource(4))
	x := bb.Var(u8, "x")
	y := bb.Var(u8, "y")
	expr := randExpr(bb, rng, x, y, 8)
	prog := Compile(expr, x, y)
	xv, yv := interp.BV(u8, 5), interp.BV(u8, 77)
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog.Run(xv, yv)
		}
	})
	b.Run("interp", func(b *testing.B) {
		env := interp.Env{x.VarID: xv, y.VarID: yv}
		for i := 0; i < b.N; i++ {
			interp.Eval(expr, env)
		}
	})
}
