// Package compilejit implements Zen's model compilation (§8 of the paper):
// an expression DAG is compiled once into a linear register program whose
// instructions are pre-dispatched Go closures, giving an executable
// implementation that stays in sync with the verified model.
//
// The paper's C# implementation emits IL that the .NET JIT turns into
// machine code; Go's standard library cannot JIT, so closure compilation is
// the substituted equivalent: all type dispatch, hash lookups and
// allocations of interpretation are paid once at compile time.
package compilejit

import (
	"fmt"

	"zen-go/internal/cancel"
	"zen-go/internal/core"
	"zen-go/internal/interp"
)

// Program is a compiled model. Call Run with the values of the input
// variables (in the order passed to Compile).
type Program struct {
	instrs  []instr
	numRegs int
	varRegs []int // register of each input variable, in Compile order
	result  int   // register holding the result
}

type instr func(regs []*interp.Value)

// Compile translates the DAG rooted at node into a register program over
// the given input variables.
func Compile(node *core.Node, vars ...*core.Node) *Program {
	c := &compiler{
		slots: make(map[*core.Node]int),
		sched: make(map[*core.Node]struct{}),
	}
	for _, v := range vars {
		c.vars = append(c.vars, v)
		c.varRegs = append(c.varRegs, c.slotFor(v))
		c.sched[v] = struct{}{}
	}
	res := c.compile(node)
	return &Program{instrs: c.instrs, numRegs: c.next, varRegs: c.varRegs, result: res}
}

// NumInstrs returns the number of compiled instructions (telemetry).
func (p *Program) NumInstrs() int { return len(p.instrs) }

// NumRegs returns the number of registers the program uses (telemetry).
func (p *Program) NumRegs() int { return p.numRegs }

// Run executes the program on concrete inputs.
func (p *Program) Run(inputs ...*interp.Value) *interp.Value {
	regs := make([]*interp.Value, p.numRegs)
	for i, in := range inputs {
		regs[p.varRegs[i]] = in
	}
	for _, ins := range p.instrs {
		ins(regs)
	}
	return regs[p.result]
}

// runGas is the number of instructions between cancellation polls in
// RunCheck. Instructions are pre-dispatched closures, so the stride is
// wider than the evaluators'.
const runGas = 1 << 12

// RunCheck is Run with a cancellation check polled every runGas
// instructions; a nil check falls back to the unpolled loop. Programs are
// straight-line but can be large (every list alternative is unrolled), so
// batch drivers over many inputs stay responsive.
func (p *Program) RunCheck(chk cancel.Check, inputs ...*interp.Value) *interp.Value {
	if chk == nil {
		return p.Run(inputs...)
	}
	regs := make([]*interp.Value, p.numRegs)
	for i, in := range inputs {
		regs[p.varRegs[i]] = in
	}
	gas := runGas
	for _, ins := range p.instrs {
		if gas--; gas <= 0 {
			gas = runGas
			chk.Point()
		}
		ins(regs)
	}
	return regs[p.result]
}

type compiler struct {
	slots   map[*core.Node]int
	sched   map[*core.Node]struct{}
	next    int
	instrs  []instr
	varRegs []int
	vars    []*core.Node
}

func (c *compiler) slotFor(n *core.Node) int {
	if s, ok := c.slots[n]; ok {
		return s
	}
	s := c.next
	c.next++
	c.slots[n] = s
	return s
}

func (c *compiler) emit(i instr) { c.instrs = append(c.instrs, i) }

// compile emits instructions computing n (once per unique node) and
// returns its register.
func (c *compiler) compile(n *core.Node) int {
	if _, ok := c.sched[n]; ok {
		return c.slots[n]
	}
	switch n.Op {
	case core.OpVar:
		panic(fmt.Sprintf("compilejit: unbound variable %s#%d", n.Name, n.VarID))
	case core.OpConst:
		dst := c.slotFor(n)
		var v *interp.Value
		if n.Type.Kind == core.KindBool {
			v = interp.Bool(n.BVal)
		} else {
			v = interp.BV(n.Type, n.UVal)
		}
		c.emit(func(regs []*interp.Value) { regs[dst] = v })
		c.sched[n] = struct{}{}
		return dst
	}

	// Compile children first (topological order). The cons branch of a
	// list case is NOT a child here: it contains bound variables and is
	// compiled as a sub-program by emitOp.
	kids := n.Kids
	if n.Op == core.OpListCase {
		kids = n.Kids[:2]
	}
	kidRegs := make([]int, len(n.Kids))
	for i, k := range kids {
		kidRegs[i] = c.compile(k)
	}
	dst := c.slotFor(n)
	c.emitOp(n, dst, kidRegs)
	c.sched[n] = struct{}{}
	return dst
}

func (c *compiler) emitOp(n *core.Node, dst int, k []int) {
	t := n.Type
	switch n.Op {
	case core.OpNot:
		c.emit(func(r []*interp.Value) { r[dst] = interp.Bool(!r[k[0]].B) })
	case core.OpAnd:
		c.emit(func(r []*interp.Value) { r[dst] = interp.Bool(r[k[0]].B && r[k[1]].B) })
	case core.OpOr:
		c.emit(func(r []*interp.Value) { r[dst] = interp.Bool(r[k[0]].B || r[k[1]].B) })
	case core.OpEq:
		c.emit(func(r []*interp.Value) { r[dst] = interp.Bool(r[k[0]].Equal(r[k[1]])) })
	case core.OpLt:
		if n.Kids[0].Type.Signed {
			ot := n.Kids[0].Type
			c.emit(func(r []*interp.Value) {
				r[dst] = interp.Bool(ot.ToSigned(r[k[0]].U) < ot.ToSigned(r[k[1]].U))
			})
		} else {
			c.emit(func(r []*interp.Value) { r[dst] = interp.Bool(r[k[0]].U < r[k[1]].U) })
		}
	case core.OpAdd:
		c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, r[k[0]].U+r[k[1]].U) })
	case core.OpSub:
		c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, r[k[0]].U-r[k[1]].U) })
	case core.OpMul:
		c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, r[k[0]].U*r[k[1]].U) })
	case core.OpBAnd:
		c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, r[k[0]].U&r[k[1]].U) })
	case core.OpBOr:
		c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, r[k[0]].U|r[k[1]].U) })
	case core.OpBXor:
		c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, r[k[0]].U^r[k[1]].U) })
	case core.OpBNot:
		c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, ^r[k[0]].U) })
	case core.OpShl:
		amt := uint(n.Index)
		if n.Index >= t.Width {
			c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, 0) })
		} else {
			c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, r[k[0]].U<<amt) })
		}
	case core.OpShr:
		amt := uint(n.Index)
		if n.Index >= t.Width {
			c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, 0) })
		} else {
			c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, r[k[0]].U>>amt) })
		}
	case core.OpIf:
		c.emit(func(r []*interp.Value) {
			if r[k[0]].B {
				r[dst] = r[k[1]]
			} else {
				r[dst] = r[k[2]]
			}
		})
	case core.OpCreate:
		kk := append([]int(nil), k...)
		c.emit(func(r []*interp.Value) {
			fields := make([]*interp.Value, len(kk))
			for i, s := range kk {
				fields[i] = r[s]
			}
			r[dst] = interp.Object(t, fields...)
		})
	case core.OpGetField:
		idx := n.Index
		c.emit(func(r []*interp.Value) { r[dst] = r[k[0]].Fields[idx] })
	case core.OpWithField:
		idx := n.Index
		c.emit(func(r []*interp.Value) {
			fields := append([]*interp.Value(nil), r[k[0]].Fields...)
			fields[idx] = r[k[1]]
			r[dst] = interp.Object(t, fields...)
		})
	case core.OpListNil:
		c.emit(func(r []*interp.Value) { r[dst] = interp.List(t) })
	case core.OpListCons:
		c.emit(func(r []*interp.Value) {
			head, tail := r[k[0]], r[k[1]]
			elems := make([]*interp.Value, 0, len(tail.Elems)+1)
			elems = append(elems, head)
			elems = append(elems, tail.Elems...)
			r[dst] = interp.List(t, elems...)
		})
	case core.OpListCase:
		// The cons branch is a sub-program over the bound head/tail
		// variables plus every free variable of this program.
		sub := Compile(n.Kids[2], append([]*core.Node{n.Bound[0], n.Bound[1]}, c.freeVars()...)...)
		free := c.freeVarRegs()
		listType := n.Kids[0].Type
		c.emit(func(r []*interp.Value) {
			list := r[k[0]]
			if len(list.Elems) == 0 {
				r[dst] = r[k[1]]
				return
			}
			args := make([]*interp.Value, 0, 2+len(free))
			args = append(args, list.Elems[0], interp.List(listType, list.Elems[1:]...))
			for _, fr := range free {
				args = append(args, r[fr])
			}
			r[dst] = sub.Run(args...)
		})
	case core.OpAdapt:
		c.emit(func(r []*interp.Value) {
			out := *r[k[0]]
			out.Type = t
			r[dst] = &out
		})
	case core.OpCast:
		srcType := n.Kids[0].Type
		if srcType.Signed {
			c.emit(func(r []*interp.Value) {
				r[dst] = interp.BV(t, uint64(srcType.ToSigned(r[k[0]].U)))
			})
		} else {
			c.emit(func(r []*interp.Value) { r[dst] = interp.BV(t, r[k[0]].U) })
		}
	default:
		panic(fmt.Sprintf("compilejit: unhandled op %v", n.Op))
	}
}

// freeVars returns the variable nodes this compiler has seen so far, so
// sub-programs can close over them.
func (c *compiler) freeVars() []*core.Node {
	out := make([]*core.Node, 0, len(c.vars))
	out = append(out, c.vars...)
	return out
}

func (c *compiler) freeVarRegs() []int {
	out := make([]int, len(c.vars))
	for i, v := range c.vars {
		out[i] = c.slots[v]
	}
	return out
}
