// Routemaps verifies a vendor-style BGP route map with both solver
// backends: clause reachability (dead-clause detection), invariant
// verification over list-valued attributes, and a full control-plane
// what-if with Minesweeper-style stable-state search.
package main

import (
	"fmt"

	"zen-go/analyses/minesweeper"
	"zen-go/nets/bgp"
	"zen-go/nets/pkt"
	"zen-go/nets/routemap"
	"zen-go/zen"
)

func main() {
	toPeer := &routemap.RouteMap{Name: "to-peer", Clauses: []routemap.Clause{
		{ // deny customer more-specifics
			Permit:        false,
			MatchPrefixes: []routemap.PrefixMatch{{Pfx: pkt.Pfx(10, 0, 0, 0, 8), GE: 25, LE: 32}},
		},
		{ // routes tagged 100 get boosted and retagged
			Permit:         true,
			MatchCommunity: 100,
			SetLocalPref:   200,
			AddCommunity:   999,
		},
		{ // never route through AS 666
			Permit:          false,
			MatchAsContains: 666,
		},
		{ // dead clause: shadowed for tagged routes (clause 1 permits them)
			Permit:         false,
			MatchCommunity: 100,
		},
		{Permit: true, PrependAs: 65000},
	}}

	lines := zen.Func(toPeer.MatchClause)
	fmt.Println("clause reachability (both backends):")
	for _, be := range []zen.Backend{zen.BDD, zen.SAT} {
		fmt.Printf("  %v:", be)
		for i := range toPeer.Clauses {
			_, ok := lines.Find(func(_ zen.Value[routemap.Route], c zen.Value[uint16]) zen.Value[bool] {
				return zen.EqC(c, uint16(i))
			}, zen.WithBackend(be), zen.WithListBound(routemap.Depth))
			mark := "reachable"
			if !ok {
				mark = "DEAD"
			}
			fmt.Printf(" clause%d=%s", i, mark)
		}
		fmt.Println()
	}

	// Invariant: every exported route either carries our prepend or was
	// tagged by the customer.
	apply := zen.Func(toPeer.Apply)
	ok, cex := apply.Verify(func(r zen.Value[routemap.Route], out zen.Value[zen.Opt[routemap.Route]]) zen.Value[bool] {
		emitted := zen.IsSome(out)
		prepended := zen.Contains(
			zen.GetField[routemap.Route, []uint16](zen.OptValue(out), "AsPath"),
			routemap.Depth+1, zen.Lift[uint16](65000))
		tagged := zen.Contains(
			zen.GetField[routemap.Route, []uint32](r, "Communities"),
			routemap.Depth, zen.Lift[uint32](100))
		return zen.Implies(emitted, zen.Or(prepended, tagged))
	}, zen.WithBackend(zen.SAT))
	fmt.Printf("\ninvariant 'exported => prepended or tagged': holds=%v (cex=%+v)\n", ok, cex)

	// Control-plane what-if: in a 4-router square, does this policy on one
	// edge change failure tolerance?
	n := &bgp.Network{}
	a := n.AddRouter("A", 1)
	b := n.AddRouter("B", 2)
	c := n.AddRouter("C", 3)
	d := n.AddRouter("D", 4)
	a.Originates = true
	a.Origin = bgp.Route{
		Prefix: pkt.IP(10, 7, 0, 0), PrefixLen: 26, LocalPref: 100,
	}
	n.Connect(a, b, toPeer, nil) // the deny-more-specifics clause bites here
	n.Connect(b, a, nil, nil)
	n.ConnectBoth(a, c)
	n.ConnectBoth(b, d)
	n.ConnectBoth(c, d)

	res := minesweeper.Check(n, minesweeper.Query{
		MaxFailures: 1,
		Property:    minesweeper.Reachable(d),
	})
	fmt.Printf("\nstable-state search (1 failure): violation=%v", res.Found)
	if res.Found {
		fmt.Printf("  failed=%v (the /26 dies on the A->B policy; one failure kills A->C)", names(res.FailedSessions))
	}
	fmt.Println()
}

func names(ss []*bgp.Session) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.From.Name + ">" + s.To.Name
	}
	return out
}
