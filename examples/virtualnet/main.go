// Virtualnet reproduces the paper's §2 motivation end to end: a
// virtualized network (Figure 3) whose overlay and underlay each verify
// clean in isolation, while the composed model exposes a cross-layer bug —
// an underlay filter that drops tunneled (GRE) overlay traffic.
package main

import (
	"fmt"

	"zen-go/nets/pkt"
	"zen-go/nets/vnet"
	"zen-go/zen"
)

func main() {
	n := vnet.Build(vnet.Config{BuggyUnderlayACL: true})
	fmt.Println("Figure 3 network: Va -- U1 ==GRE== U2 ==GRE== U3 -- Vb")
	fmt.Println("U2 carries a filter dropping protocol 47 (GRE).")
	fmt.Println()

	// (1) Overlay-only verification, as a per-layer tool would do it:
	// assume the virtual link is perfect.
	overlay := zen.Func(n.OverlayOnly)
	ok, _ := overlay.Verify(func(p zen.Value[pkt.Packet], out zen.Value[zen.Opt[pkt.Packet]]) zen.Value[bool] {
		toVb := zen.EqC(pkt.DstIP(pkt.Overlay(p)), n.VbIP)
		return zen.Implies(toVb, zen.IsSome(out))
	})
	fmt.Printf("overlay-only verification:   PASS=%v  (assumes perfect underlay)\n", ok)

	// (2) Underlay-only verification: ordinary IP traffic transits U2.
	underlay := zen.Func(n.UnderlayOnly)
	ok, _ = underlay.Verify(func(h zen.Value[pkt.Header], out zen.Value[zen.Opt[pkt.Header]]) zen.Value[bool] {
		ordinary := zen.Or(
			zen.EqC(pkt.Protocol(h), pkt.ProtoTCP),
			zen.EqC(pkt.Protocol(h), pkt.ProtoUDP),
			zen.EqC(pkt.Protocol(h), pkt.ProtoICMP))
		toU3 := zen.EqC(pkt.DstIP(h), n.U3IP)
		return zen.Implies(zen.And(toU3, ordinary), zen.IsSome(out))
	})
	fmt.Printf("underlay-only verification:  PASS=%v  (never generates GRE)\n", ok)

	// (3) Compositional verification of the real pipeline: encapsulation
	// at U1, transit at U2, decapsulation at U3. Zen composes the models
	// by ordinary function calls and the bug surfaces.
	full := zen.Func(n.VaToVb)
	witness, found := full.Find(func(p zen.Value[pkt.Packet], out zen.Value[zen.Opt[pkt.Packet]]) zen.Value[bool] {
		toVb := zen.EqC(pkt.DstIP(pkt.Overlay(p)), n.VbIP)
		plain := zen.IsNone(pkt.Underlay(p))
		return zen.And(toVb, plain, zen.IsNone(out))
	})
	fmt.Printf("composed verification:       BUG FOUND=%v\n", found)
	if found {
		fmt.Printf("  dropped packet: %s -> %s proto=%d port=%d\n",
			pkt.FormatIP(witness.Overlay.SrcIP), pkt.FormatIP(witness.Overlay.DstIP),
			witness.Overlay.Protocol, witness.Overlay.DstPort)
		out := full.Evaluate(witness)
		fmt.Printf("  replayed in simulation: delivered=%v (packet dies at U2's GRE filter)\n", out.Ok)
	}

	// Fix the network and re-verify.
	fixed := vnet.Build(vnet.Config{})
	fullFixed := zen.Func(fixed.VaToVb)
	ok, _ = fullFixed.Verify(func(p zen.Value[pkt.Packet], out zen.Value[zen.Opt[pkt.Packet]]) zen.Value[bool] {
		toVb := zen.EqC(pkt.DstIP(pkt.Overlay(p)), fixed.VbIP)
		plain := zen.IsNone(pkt.Underlay(p))
		return zen.Implies(zen.And(toVb, plain), zen.IsSome(out))
	})
	fmt.Printf("\nafter removing the filter:   PASS=%v (all Vb-bound packets delivered)\n", ok)
}
