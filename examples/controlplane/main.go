// Controlplane runs four analyses over ONE BGP model of a datacenter-ish
// fabric — the compositional pitch for the control plane: simulation
// (Batfish-style), stable-state search with failures (Minesweeper-style),
// compression (Bonsai-style), and ternary abstract interpretation
// (Shapeshifter-style), all from the same Zen expressions.
package main

import (
	"fmt"

	"zen-go/analyses/bonsai"
	"zen-go/analyses/minesweeper"
	"zen-go/analyses/shapeshifter"
	"zen-go/nets/bgp"
	"zen-go/nets/pkt"
	"zen-go/nets/routemap"
	"zen-go/zen"
)

func main() {
	// An edge router originates a prefix into a 4-spine fabric feeding a
	// ToR. One spine import boosts local-pref (traffic engineering).
	n := &bgp.Network{}
	edge := n.AddRouter("EDGE", 65000)
	edge.Originates = true
	edge.Origin = bgp.Route{Prefix: pkt.IP(203, 0, 113, 0), PrefixLen: 24, LocalPref: 100}
	tor := n.AddRouter("TOR", 65100)
	spines := make([]*bgp.Router, 4)
	for i := range spines {
		spines[i] = n.AddRouter(fmt.Sprintf("SPINE%d", i), 65200)
		n.ConnectBoth(edge, spines[i])
		n.ConnectBoth(spines[i], tor)
	}
	boost := &routemap.RouteMap{Clauses: []routemap.Clause{{Permit: true, SetLocalPref: 300}}}
	for _, s := range n.Sessions {
		if s.From == spines[2] && s.To == tor {
			s.Import = boost
		}
	}

	// 1. Concrete simulation.
	sim := bgp.Simulate(n, 16)
	fmt.Printf("simulation:    TOR route lp=%d via AS path %v\n",
		sim[tor].Val.LocalPref, sim[tor].Val.AsPath)

	// 2. Minesweeper: does the ToR survive k failures?
	for k := 0; k <= 5; k++ {
		res := minesweeper.Check(n, minesweeper.Query{
			MaxFailures: k, Property: minesweeper.Reachable(tor),
		})
		status := "reachable under all failure patterns"
		if res.Found {
			status = fmt.Sprintf("DISCONNECTABLE (e.g. failing %d sessions)", len(res.FailedSessions))
		}
		fmt.Printf("minesweeper:   k=%d -> %s\n", k, status)
		if res.Found {
			break
		}
	}

	// 3. Bonsai: compress the fabric.
	ab := bonsai.Compress(n)
	fmt.Printf("bonsai:        %d routers -> %d classes (%.1fx compression)\n",
		len(n.Routers), ab.NumClasses(), ab.CompressionRatio(n))
	abSim := bgp.Simulate(ab.Abstract, 16)
	fmt.Printf("               abstract TOR route lp=%d (matches concrete: %v)\n",
		abSim[ab.Repr[ab.ClassOf[tor]]].Val.LocalPref,
		abSim[ab.Repr[ab.ClassOf[tor]]].Val.LocalPref == sim[tor].Val.LocalPref)

	// 4. Shapeshifter: abstract interpretation with an unknown origin Med.
	an := shapeshifter.New(n)
	an.UnknownOriginFields = []string{"Med"}
	abs := an.Analyze(n)
	fmt.Printf("shapeshifter:  TOR HasRoute=%v, LocalPref known bits=%08x\n",
		abs[tor].HasRoute, abs[tor].LocalPrefKnown)

	// Bonus: the boosted spine wins for the ToR; prove the TE intent as a
	// stable-state property.
	res := minesweeper.Check(n, minesweeper.Query{
		MaxFailures: 0,
		Property: func(chosen map[*bgp.Router]zen.Value[zen.Opt[bgp.Route]]) zen.Value[bool] {
			lp := zen.GetField[bgp.Route, uint32](zen.OptValue(chosen[tor]), "LocalPref")
			return zen.And(zen.IsSome(chosen[tor]), zen.EqC(lp, uint32(300)))
		},
	})
	fmt.Printf("TE intent:     'TOR always prefers the boosted spine' holds=%v\n", !res.Found)
}
