// HSA pushes packet sets through a two-path network (Figure 8 of the
// paper): exact reachability sets per exit, with counts, and a ternary
// (0/1/*) spot check.
package main

import (
	"fmt"

	"zen-go/analyses/hsa"
	"zen-go/nets/acl"
	"zen-go/nets/device"
	"zen-go/nets/fwd"
	"zen-go/nets/pkt"
	"zen-go/zen"
)

func main() {
	// A splits: 10/8 goes north via B (which filters ssh), the rest goes
	// south via C.
	a := &device.Device{Name: "A"}
	ain, ab, ac := a.AddInterface("in"), a.AddInterface("north"), a.AddInterface("south")
	b := &device.Device{Name: "B"}
	bw, be := b.AddInterface("w"), b.AddInterface("e")
	c := &device.Device{Name: "C"}
	cw, ce := c.AddInterface("w"), c.AddInterface("e")

	a.Table = fwd.New(
		fwd.Entry{Prefix: pkt.Pfx(10, 0, 0, 0, 8), Port: ab.ID},
		fwd.Entry{Prefix: pkt.Pfx(0, 0, 0, 0, 0), Port: ac.ID},
	)
	b.Table = fwd.New(fwd.Entry{Prefix: pkt.Pfx(0, 0, 0, 0, 0), Port: be.ID})
	c.Table = fwd.New(fwd.Entry{Prefix: pkt.Pfx(0, 0, 0, 0, 0), Port: ce.ID})
	bw.AclIn = &acl.ACL{Rules: []acl.Rule{
		{Permit: false, DstLow: 22, DstHigh: 22, Protocol: pkt.ProtoTCP},
		{Permit: true},
	}}
	device.Link(ab, bw)
	device.Link(ac, cw)

	w := zen.NewWorld()
	an := hsa.New(w, a, b, c)
	all := zen.SetOf(w, func(p zen.Value[pkt.Packet]) zen.Value[bool] {
		return zen.Eq(pkt.Underlay(p), zen.None[pkt.Header]())
	})

	fmt.Println("header space exploration from A:in over all paths:")
	for _, ps := range an.Explore(ain, all) {
		hops := ""
		for i, h := range ps.Hops {
			if i > 0 {
				hops += " -> "
			}
			hops += h.String()
		}
		fmt.Printf("  %-40s %v packets\n", hops, ps.Set.Count())
	}

	north := an.ReachableAt(ain, all, be)
	south := an.ReachableAt(ain, all, ce)
	fmt.Printf("\nexit north (B): %v packets\n", north.Count())
	fmt.Printf("exit south (C): %v packets\n", south.Count())

	// Set-level question: which packets can't exit anywhere? (ssh into
	// 10/8.)
	blackholed := all.Minus(north).Minus(south)
	fmt.Printf("black-holed:    %v packets\n", blackholed.Count())
	if ex, ok := blackholed.Element(); ok {
		fmt.Printf("  e.g. dst=%s port=%d proto=%d\n",
			pkt.FormatIP(ex.Overlay.DstIP), ex.Overlay.DstPort, ex.Overlay.Protocol)
	}
	for _, cube := range blackholed.Cubes(3) {
		fmt.Printf("  cube: %s\n", cube)
	}

	// Ternary spot checks along the north path.
	path := []*device.Interface{ain, ab, bw, be}
	h := pkt.Header{DstIP: pkt.IP(10, 9, 9, 9), DstPort: 443, Protocol: pkt.ProtoTCP}
	fmt.Printf("\nternary: https to 10.9.9.9, ports wildcarded -> delivered=%v\n",
		hsa.TernaryDelivered(path, h, "SrcPort", "SrcIP"))
	fmt.Printf("ternary: same with dst port wildcarded        -> delivered=%v (ssh may die)\n",
		hsa.TernaryDelivered(path, h, "DstPort"))
}
