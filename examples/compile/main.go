// Compile demonstrates §8's implementation extraction: the verified ACL
// model is compiled into an executable Go function and compared against
// interpretation — same results, several times faster, and by construction
// in sync with what was verified.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"zen-go/nets/acl"
	"zen-go/nets/pkt"
	"zen-go/zen"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// A mid-sized filter.
	rules := make([]acl.Rule, 0, 64)
	for i := 0; i < 63; i++ {
		rules = append(rules, acl.Rule{
			Permit: i%3 != 0,
			DstPfx: pkt.Prefix{Address: rng.Uint32() &^ 0xFFFF, Length: 16},
		})
	}
	rules = append(rules, acl.Rule{Permit: true})
	a := &acl.ACL{Name: "compiled", Rules: rules}

	fn := zen.Func(a.Allow)

	// First verify something about the model...
	ok, _ := fn.Verify(func(_ zen.Value[pkt.Header], out zen.Value[bool]) zen.Value[bool] {
		return zen.Or(out, zen.Not(out)) // trivially true: the model is total
	})
	fmt.Printf("model verified total: %v\n", ok)

	// ...then extract the implementation from the same model.
	compiled := fn.Compile()

	pkts := make([]pkt.Header, 4096)
	for i := range pkts {
		pkts[i] = pkt.Header{DstIP: rng.Uint32(), DstPort: uint16(rng.Intn(65536))}
	}

	// Agreement check.
	for _, h := range pkts[:512] {
		if compiled(h) != fn.Evaluate(h) {
			panic("compiled implementation diverged from the model")
		}
	}
	fmt.Println("compiled implementation agrees with the model on 512 random packets")

	// Throughput comparison.
	start := time.Now()
	for _, h := range pkts {
		fn.Evaluate(h)
	}
	interp := time.Since(start)

	start = time.Now()
	for _, h := range pkts {
		compiled(h)
	}
	comp := time.Since(start)

	fmt.Printf("interpreted: %8v for %d packets (%.0f pkts/ms)\n",
		interp, len(pkts), float64(len(pkts))/float64(interp.Milliseconds()+1))
	fmt.Printf("compiled:    %8v for %d packets (%.0f pkts/ms, %.1fx faster)\n",
		comp, len(pkts), float64(len(pkts))/float64(comp.Milliseconds()+1),
		float64(interp)/float64(comp))
}
