// Testgen demonstrates §8's model-based testing: GenerateInputs produces
// one packet per reachable branch path of an ACL model — a covering test
// suite for the ACL's implementation.
package main

import (
	"fmt"

	"zen-go/nets/acl"
	"zen-go/nets/pkt"
	"zen-go/zen"
)

func main() {
	edge := &acl.ACL{Name: "edge", Rules: []acl.Rule{
		{Permit: false, DstPfx: pkt.Pfx(10, 0, 0, 0, 8), Protocol: pkt.ProtoICMP},
		{Permit: true, DstPfx: pkt.Pfx(10, 0, 0, 0, 8), DstLow: 80, DstHigh: 80},
		{Permit: true, DstPfx: pkt.Pfx(10, 0, 0, 0, 8), DstLow: 443, DstHigh: 443},
		{Permit: true, DstPfx: pkt.Pfx(10, 1, 0, 0, 16)}, // shadowing candidate
		{Permit: false, DstPfx: pkt.Pfx(10, 0, 0, 0, 8)},
		{Permit: true},
	}}
	fn := zen.Func(edge.MatchLine)

	fmt.Printf("model has %d branch paths\n", fn.PathConditions(0))
	inputs := fn.GenerateInputs(zen.GenOptions{})
	fmt.Printf("generated %d covering packets:\n", len(inputs))

	covered := map[uint16]bool{}
	for _, h := range inputs {
		line := fn.Evaluate(h)
		covered[line] = true
		fmt.Printf("  line %d: dst=%-15s port=%-5d proto=%d\n",
			line, pkt.FormatIP(h.DstIP), h.DstPort, h.Protocol)
	}

	// Coverage report: every reachable line (plus the implicit default)
	// should have a test packet; lines without one are unreachable.
	fmt.Println("\nline coverage:")
	for i := 0; i <= len(edge.Rules); i++ {
		status := "covered"
		if !covered[uint16(i)] {
			status = "UNREACHABLE (dead rule?)"
		}
		what := "implicit default"
		if i < len(edge.Rules) {
			what = fmt.Sprintf("rule %d", i)
		}
		fmt.Printf("  %-18s %s\n", what, status)
	}
	fmt.Println("\nFeed these packets to the real device and compare its verdicts")
	fmt.Println("with the model's — model-based testing with per-rule coverage.")
}
