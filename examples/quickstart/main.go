// Quickstart: model an ACL in Zen, simulate it, verify it, and find
// counterexample packets — the complete workflow of the paper in ~60 lines
// of user code.
package main

import (
	"fmt"

	"zen-go/nets/acl"
	"zen-go/nets/pkt"
	"zen-go/zen"
)

func main() {
	// An edge filter: no ICMP into 10/8, web traffic in, everything else
	// into 10/8 dropped, all other destinations permitted.
	edge := &acl.ACL{Name: "edge", Rules: []acl.Rule{
		{Permit: false, DstPfx: pkt.Pfx(10, 0, 0, 0, 8), Protocol: pkt.ProtoICMP},
		{Permit: true, DstPfx: pkt.Pfx(10, 0, 0, 0, 8), DstLow: 80, DstHigh: 80},
		{Permit: true, DstPfx: pkt.Pfx(10, 0, 0, 0, 8), DstLow: 443, DstHigh: 443},
		{Permit: false, DstPfx: pkt.Pfx(10, 0, 0, 0, 8)},
		{Permit: true},
	}}

	// The model is an ordinary Go function over Zen values.
	allow := zen.Func(edge.Allow)

	// 1. Simulation: models are executable.
	h := pkt.Header{DstIP: pkt.IP(10, 1, 2, 3), DstPort: 443, Protocol: pkt.ProtoTCP}
	fmt.Printf("simulate   https to 10.1.2.3 -> permit=%v\n", allow.Evaluate(h))

	// 2. Find: search for an input with a property (here: a permitted
	//    telnet packet — there should be none into 10/8).
	telnetIn, found := allow.Find(func(h zen.Value[pkt.Header], permitted zen.Value[bool]) zen.Value[bool] {
		return zen.And(
			permitted,
			pkt.Pfx(10, 0, 0, 0, 8).Contains(pkt.DstIP(h)),
			zen.EqC(pkt.DstPort(h), uint16(23)))
	})
	fmt.Printf("find       permitted telnet into 10/8: found=%v %+v\n", found, telnetIn)

	// 3. Verify: prove a property for all 2^104 packets, or get a
	//    counterexample. (ICMP into 10/8 is always denied.)
	ok, cex := allow.Verify(func(h zen.Value[pkt.Header], permitted zen.Value[bool]) zen.Value[bool] {
		icmpIn := zen.And(
			pkt.Pfx(10, 0, 0, 0, 8).Contains(pkt.DstIP(h)),
			zen.EqC(pkt.Protocol(h), pkt.ProtoICMP))
		return zen.Implies(icmpIn, zen.Not(permitted))
	})
	fmt.Printf("verify     'ICMP into 10/8 denied' holds=%v (cex=%+v)\n", ok, cex)

	// 4. The same model, line-tracked, on both solver backends.
	lines := zen.Func(edge.MatchLine)
	for _, be := range []zen.Backend{zen.BDD, zen.SAT} {
		w, ok := lines.Find(func(_ zen.Value[pkt.Header], l zen.Value[uint16]) zen.Value[bool] {
			return zen.EqC(l, uint16(3)) // the drop-rest-of-10/8 line
		}, zen.WithBackend(be))
		fmt.Printf("backend %v  packet hitting line 3: found=%v dst=%s port=%d\n",
			be, ok, pkt.FormatIP(w.DstIP), w.DstPort)
	}

	// 5. Exact accounting with state sets: how many headers does the ACL
	//    admit?
	world := zen.NewWorld()
	admitted := zen.SolutionSet(world, allow)
	fmt.Printf("stateset   permitted headers: %v of 2^104\n", admitted.Count())
}
