package zenrepro

// The enterprise-edge integration test: an inside host's packet is
// source-NATed, conntrack-filtered, GRE-tunneled across a transit network,
// and decapsulated at a remote site — four independently written models
// composed by ordinary function calls (the paper's central claim), then
// verified end to end with both solver backends.

import (
	"testing"

	"zen-go/nets/acl"
	"zen-go/nets/firewall"
	"zen-go/nets/gre"
	"zen-go/nets/nat"
	"zen-go/nets/pkt"
	"zen-go/zen"
)

// edge is the composed pipeline configuration.
type edge struct {
	nat    *nat.NAT
	fw     *firewall.Firewall
	tunnel *gre.Tunnel
	filter *acl.ACL // transit filter applied to the tunneled packet
}

func newEdge(transitDropsGRE bool) *edge {
	e := &edge{
		nat: &nat.NAT{Rules: []nat.Rule{{
			Kind: nat.SNAT, Match: pkt.Pfx(192, 168, 0, 0, 16),
			NewAddr: pkt.IP(198, 51, 100, 1), PortBase: 20000, LowBits: 8,
		}}},
		fw: &firewall.Firewall{InsidePfx: pkt.Pfx(192, 168, 0, 0, 16)},
		tunnel: &gre.Tunnel{
			Name: "site-a-to-b", SrcIP: pkt.IP(203, 0, 113, 1), DstIP: pkt.IP(203, 0, 113, 2),
		},
	}
	rules := []acl.Rule{{Permit: true}}
	if transitDropsGRE {
		rules = []acl.Rule{
			{Permit: false, Protocol: pkt.ProtoGRE},
			{Permit: true},
		}
	}
	e.filter = &acl.ACL{Name: "transit", Rules: rules}
	return e
}

// egress composes: NAT -> conntrack -> encapsulate -> transit filter ->
// decapsulate. The result is None whenever any stage drops.
func (e *edge) egress(h zen.Value[pkt.Header]) zen.Value[zen.Opt[pkt.Header]] {
	// 1. Source NAT.
	translated := e.nat.Apply(h)

	// 2. Stateful firewall, outbound direction (always allowed, tracked).
	st := e.fw.Outbound(zen.NilList[firewall.Flow](), translated)
	allowed := zen.GetField[firewall.Result, bool](st, "Allowed")

	// 3. GRE encapsulation toward the remote site.
	p := zen.Create[pkt.Packet](
		zen.F("Overlay", translated),
		zen.F("Underlay", zen.None[pkt.Header]()))
	tunneled := e.tunnel.Encap(p)

	// 4. Transit filter sees the OUTER header.
	outer := zen.OptValue(pkt.Underlay(tunneled))
	pass := e.filter.Allow(outer)

	// 5. Remote decapsulation recovers the overlay.
	delivered := pkt.Overlay(e.tunnel.Decap(tunneled))

	ok := zen.And(allowed, pass)
	return zen.If(ok, zen.Some(delivered), zen.None[pkt.Header]())
}

func TestIntegrationHealthyEdgeDeliversTranslated(t *testing.T) {
	e := newEdge(false)
	fn := zen.Func(e.egress)

	// Concrete smoke test.
	in := pkt.Header{
		SrcIP: pkt.IP(192, 168, 0, 42), DstIP: pkt.IP(8, 8, 8, 8),
		SrcPort: 5555, DstPort: 443, Protocol: pkt.ProtoTCP,
	}
	out := fn.Evaluate(in)
	if !out.Ok {
		t.Fatal("healthy edge must deliver")
	}
	if out.Val.SrcIP != pkt.IP(198, 51, 100, 1) || out.Val.SrcPort != 20042 {
		t.Fatalf("NAT not applied end to end: %+v", out.Val)
	}
	if out.Val.DstIP != in.DstIP {
		t.Fatal("destination must survive the pipeline")
	}

	// Verified for ALL inside packets, on both backends: delivery holds
	// and the source is always the NAT pool address.
	for _, be := range []zen.Backend{zen.BDD, zen.SAT} {
		ok, cex := fn.Verify(func(h zen.Value[pkt.Header], out zen.Value[zen.Opt[pkt.Header]]) zen.Value[bool] {
			inside := pkt.Pfx(192, 168, 0, 0, 16).Contains(pkt.SrcIP(h))
			delivered := zen.IsSome(out)
			pooled := zen.EqC(zen.GetField[pkt.Header, uint32](zen.OptValue(out), "SrcIP"),
				pkt.IP(198, 51, 100, 1))
			return zen.Implies(inside, zen.And(delivered, pooled))
		}, zen.WithBackend(be))
		if !ok {
			t.Fatalf("%v: end-to-end NAT property violated by %+v", be, cex)
		}
	}
}

func TestIntegrationTransitFilterKillsTunnel(t *testing.T) {
	// The §2 bug at a richer composition: a transit filter that drops GRE
	// silently black-holes the whole edge — every inside packet dies.
	e := newEdge(true)
	fn := zen.Func(e.egress)
	ok, _ := fn.Verify(func(h zen.Value[pkt.Header], out zen.Value[zen.Opt[pkt.Header]]) zen.Value[bool] {
		return zen.IsNone(out)
	}, zen.WithBackend(zen.SAT))
	if !ok {
		t.Fatal("GRE-dropping transit must black-hole everything")
	}
	// The per-stage views still look fine: the NAT translates, the
	// firewall allows outbound, the filter permits ordinary traffic.
	plainOK := zen.Func(func(h zen.Value[pkt.Header]) zen.Value[bool] {
		return e.filter.Allow(h)
	})
	if !plainOK.Evaluate(pkt.Header{DstIP: 1, Protocol: pkt.ProtoTCP}) {
		t.Fatal("the transit filter permits ordinary TCP — the bug is compositional")
	}
}

func TestIntegrationReturnPathRequiresConntrack(t *testing.T) {
	// The reverse direction: an inbound packet is accepted only when it
	// answers the (translated) outbound flow. Composing NAT with the
	// firewall catches a classic deployment mistake: conntrack must see
	// post-NAT addresses.
	e := newEdge(false)
	fn := zen.Func2(func(outH zen.Value[pkt.Header], inH zen.Value[pkt.Header]) zen.Value[bool] {
		// Outbound: translate then track.
		translated := e.nat.Apply(outH)
		st := e.fw.Outbound(zen.NilList[firewall.Flow](), translated)
		state := zen.GetField[firewall.Result, firewall.State](st, "State")
		// Inbound: checked against the tracked (translated) flow.
		in := e.fw.Inbound(state, inH)
		return zen.GetField[firewall.Result, bool](in, "Allowed")
	})

	// For every outbound packet from inside, the exact reverse of its
	// TRANSLATED form is accepted...
	ok, a, b := fn.Verify(func(outH, inH zen.Value[pkt.Header], accepted zen.Value[bool]) zen.Value[bool] {
		inside := pkt.Pfx(192, 168, 0, 0, 16).Contains(pkt.SrcIP(outH))
		translated := e.nat.Apply(outH)
		isReply := zen.And(
			zen.Eq(pkt.SrcIP(inH), pkt.DstIP(translated)),
			zen.Eq(pkt.DstIP(inH), pkt.SrcIP(translated)),
			zen.Eq(pkt.SrcPort(inH), pkt.DstPort(translated)),
			zen.Eq(pkt.DstPort(inH), pkt.SrcPort(translated)),
			zen.Eq(pkt.Protocol(inH), pkt.Protocol(translated)))
		return zen.Implies(zen.And(inside, isReply), accepted)
	}, zen.WithBackend(zen.SAT))
	if !ok {
		t.Fatalf("translated reply must be accepted; cex out=%+v in=%+v", a, b)
	}

	// ...and a reply addressed to the PRE-NAT inside address is NOT (the
	// firewall tracks post-NAT flows) — found as a concrete witness.
	outW, _, found := fn.Find(func(outH, inH zen.Value[pkt.Header], accepted zen.Value[bool]) zen.Value[bool] {
		inside := pkt.Pfx(192, 168, 0, 0, 16).Contains(pkt.SrcIP(outH))
		naive := zen.And(
			zen.Eq(pkt.SrcIP(inH), pkt.DstIP(outH)),
			zen.Eq(pkt.DstIP(inH), pkt.SrcIP(outH)), // pre-NAT address!
			zen.Eq(pkt.SrcPort(inH), pkt.DstPort(outH)),
			zen.Eq(pkt.DstPort(inH), pkt.SrcPort(outH)),
			zen.Eq(pkt.Protocol(inH), pkt.Protocol(outH)))
		return zen.And(inside, naive, zen.Not(accepted))
	}, zen.WithBackend(zen.SAT))
	if !found {
		t.Fatal("a naive pre-NAT reply that gets dropped must exist")
	}
	if outW.SrcIP>>16 != uint32(192)<<8|168 {
		t.Fatalf("witness outbound %s not from inside", pkt.FormatIP(outW.SrcIP))
	}
}
