package zenrepro

// FindAll's incremental path: enumerating k models in one session must be
// strictly cheaper than re-solving from scratch k times, because the
// session keeps the solver's learned clauses across the blocking
// constraints. The comparison is over the SAT backend's conflict counter
// (deterministic: one solver, fixed seeds), never wall clock — this repo's
// CI runs on a single core where timing comparisons lie.

import (
	"context"
	"testing"

	"zen-go/zen"
)

// squareRoots is x*x == 1 over uint32: exactly four models (1, 2^31-1,
// 2^31+1, 2^32-1 — the square roots of unity mod 2^32), each found only
// after real conflict-driven search through the 32-bit multiplier.
func squareFn() *zen.Fn[uint32, uint32] {
	return zen.Func(func(x zen.Value[uint32]) zen.Value[uint32] {
		return zen.Mul(x, x)
	})
}

func squarePred(_ zen.Value[uint32], out zen.Value[uint32]) zen.Value[bool] {
	return zen.EqC(out, 1)
}

var squareRootsOfUnity = map[uint32]bool{
	1:           true,
	1<<31 - 1:   true,
	1<<31 + 1:   true,
	0xFFFF_FFFF: true,
}

func TestFindAllIncrementalCheaperThanRestarts(t *testing.T) {
	ctx := context.Background()

	// One session, four models: the blocking clauses land in a solver that
	// already holds everything it learned finding the previous roots.
	incr := &zen.Stats{}
	all, err := squareFn().FindAllCtx(ctx, squarePred, 4, zen.WithBackend(zen.SAT), zen.WithStats(incr))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("FindAll found %d models, want 4: %v", len(all), all)
	}
	for _, x := range all {
		if !squareRootsOfUnity[x] {
			t.Fatalf("FindAll produced %d, not a square root of unity mod 2^32", x)
		}
	}

	// Four independent solves reproducing the same enumeration: each call
	// starts a cold solver and re-pays the full search, plus the blocking
	// predicates for the roots already found.
	restart := &zen.Stats{}
	found := map[uint32]bool{}
	for i := 0; i < 4; i++ {
		fn := squareFn()
		prior := make([]uint32, 0, len(found))
		for x := range found {
			prior = append(prior, x)
		}
		x, ok, err := fn.FindCtx(ctx, func(in zen.Value[uint32], out zen.Value[uint32]) zen.Value[bool] {
			cond := squarePred(in, out)
			for _, p := range prior {
				cond = zen.And(cond, zen.Not(zen.EqC(in, p)))
			}
			return cond
		}, zen.WithBackend(zen.SAT), zen.WithStats(restart))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("restart solve %d found nothing", i)
		}
		if found[x] {
			t.Fatalf("restart solve %d repeated model %d despite blocking", i, x)
		}
		found[x] = true
	}

	ic := incr.Snapshot().SAT.Conflicts
	rc := restart.Snapshot().SAT.Conflicts
	if rc == 0 {
		t.Fatal("restart runs hit zero conflicts; workload too easy to measure the incremental path")
	}
	if ic >= rc {
		t.Fatalf("incremental enumeration cost %d conflicts, restarts cost %d — clause reuse is not paying", ic, rc)
	}
	t.Logf("conflicts: incremental=%d restarts=%d", ic, rc)

	// The portfolio's FindAll rides the same incremental path on whichever
	// strategy wins the race; it must surface the identical model set.
	pf, err := squareFn().FindAllCtx(ctx, squarePred, 4, zen.WithBackend(zen.Portfolio))
	if err != nil {
		t.Fatal(err)
	}
	if len(pf) != 4 {
		t.Fatalf("portfolio FindAll found %d models, want 4: %v", len(pf), pf)
	}
	for _, x := range pf {
		if !squareRootsOfUnity[x] {
			t.Fatalf("portfolio FindAll produced %d, not a square root of unity", x)
		}
	}
}
